package core

import (
	"fmt"
	"math/rand"
	"testing"

	"distcfd/internal/cfd"
	"distcfd/internal/relation"
)

func TestNewBlockSpecSortsAndDedupes(t *testing.T) {
	spec, err := NewBlockSpec([]string{"a", "b"}, [][]string{
		{"_", "_"},
		{"1", "_"},
		{"1", "2"},
		{"1", "_"}, // duplicate
	})
	if err != nil {
		t.Fatal(err)
	}
	if spec.K() != 3 {
		t.Fatalf("K = %d, want 3 (dedup)", spec.K())
	}
	if countWildcards(spec.Patterns[0]) != 0 ||
		countWildcards(spec.Patterns[1]) != 1 ||
		countWildcards(spec.Patterns[2]) != 2 {
		t.Errorf("order = %v", spec.Patterns)
	}
}

func TestNewBlockSpecValidation(t *testing.T) {
	if _, err := NewBlockSpec(nil, [][]string{{"x"}}); err == nil {
		t.Error("empty X accepted")
	}
	if _, err := NewBlockSpec([]string{"a"}, nil); err == nil {
		t.Error("no patterns accepted")
	}
	if _, err := NewBlockSpec([]string{"a"}, [][]string{{"x", "y"}}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestAssignFirstMatchSemantics(t *testing.T) {
	spec, err := NewBlockSpec([]string{"a", "b"}, [][]string{
		{"1", "2"}, // most specific
		{"1", "_"},
		{"_", "_"}, // catch-all
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		vals []string
		want int
	}{
		{[]string{"1", "2"}, 0},
		{[]string{"1", "9"}, 1},
		{[]string{"7", "7"}, 2},
	}
	for _, c := range cases {
		if got := spec.Assign(c.vals); got != c.want {
			t.Errorf("Assign(%v) = %d, want %d", c.vals, got, c.want)
		}
	}
}

func TestAssignNoMatch(t *testing.T) {
	spec, err := NewBlockSpec([]string{"a"}, [][]string{{"1"}, {"2"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Assign([]string{"9"}); got != -1 {
		t.Errorf("Assign(9) = %d, want -1", got)
	}
}

// TestAssignIndexAgreesWithScan: the hash index must agree with a
// naive first-match scan on random patterns and values.
func TestAssignIndexAgreesWithScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		nx := 1 + rng.Intn(3)
		x := make([]string, nx)
		for i := range x {
			x[i] = fmt.Sprintf("x%d", i)
		}
		k := 1 + rng.Intn(8)
		pats := make([][]string, k)
		for p := range pats {
			row := make([]string, nx)
			for i := range row {
				if rng.Intn(2) == 0 {
					row[i] = cfd.Wildcard
				} else {
					row[i] = fmt.Sprintf("v%d", rng.Intn(3))
				}
			}
			pats[p] = row
		}
		spec, err := NewBlockSpec(x, pats)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 50; probe++ {
			vals := make([]string, nx)
			for i := range vals {
				vals[i] = fmt.Sprintf("v%d", rng.Intn(4))
			}
			want := -1
			for l, p := range spec.Patterns {
				if cfd.MatchAll(vals, p) {
					want = l
					break
				}
			}
			if got := spec.Assign(vals); got != want {
				t.Fatalf("Assign(%v) = %d, scan = %d, patterns %v", vals, got, want, spec.Patterns)
			}
		}
	}
}

func TestAssignAllCounts(t *testing.T) {
	s := relation.MustSchema("T", []string{"a", "b"})
	d := relation.MustFromRows(s,
		[]string{"1", "x"}, []string{"1", "y"}, []string{"2", "x"}, []string{"9", "z"},
	)
	spec, err := NewBlockSpec([]string{"a"}, [][]string{{"1"}, {"2"}})
	if err != nil {
		t.Fatal(err)
	}
	assign, counts, err := spec.AssignAll(d)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 2 || counts[1] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if assign[3] != -1 {
		t.Errorf("unmatched tuple assigned to %d", assign[3])
	}
	if _, _, err := spec.AssignAll(relation.MustFromRows(relation.MustSchema("U", []string{"z"}), []string{"1"})); err == nil {
		t.Error("expected error for missing attributes")
	}
}

func TestPatternPredicateFromSpec(t *testing.T) {
	spec, err := NewBlockSpec([]string{"a", "b"}, [][]string{{"1", "_"}})
	if err != nil {
		t.Fatal(err)
	}
	p := spec.PatternPredicate(0)
	if len(p.Atoms) != 1 || p.Atoms[0].Attr != "a" {
		t.Errorf("predicate = %v", p)
	}
}

func TestRestrictCFD(t *testing.T) {
	c := cfd.MustParse(`r: [a, b] -> [y] : (1, _ || _), (2, _ || _)`)
	spec, err := SpecFromCFD(c)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < spec.K(); l++ {
		r := spec.RestrictCFD(c, l)
		if len(r.Tp) != 1 {
			t.Errorf("block %d restriction has %d rows", l, len(r.Tp))
		}
		if r.Tp[0].LHS[0] != spec.Patterns[l][0] {
			t.Errorf("block %d restriction row = %v, spec pattern %v", l, r.Tp[0], spec.Patterns[l])
		}
	}
	// Mined spec (patterns not in tableau): restriction falls back to c.
	mined, err := NewBlockSpec([]string{"a", "b"}, [][]string{{"9", "9"}})
	if err != nil {
		t.Fatal(err)
	}
	if r := mined.RestrictCFD(c, 0); len(r.Tp) != 2 {
		t.Errorf("mined restriction should keep full tableau, got %v", r)
	}
}
