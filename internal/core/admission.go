package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"distcfd/internal/cfd"
	"distcfd/internal/mining"
	"distcfd/internal/relation"
)

// Admission control. A site under the paper's protocol accepts every
// request; a production site must be able to say "not now". This layer
// wraps a SiteAPI with a bounded concurrent-work semaphore plus a
// bounded wait queue: a call past the concurrency limit waits at most
// MaxWait for a slot, a call past the queue limit fails immediately,
// and either rejection is the typed CodeOverloaded error carrying a
// retry-after hint the coordinator's backoff honors. The same wrapper
// owns the drain state machine: Drain() stops admitting work, lets
// in-flight calls finish (bounded by DrainTimeout), and rejects new
// work with the typed CodeDraining error, which FailDegrade treats as
// "reroute or exclude", never as a dead site.
//
// Liveness stays orthogonal to load: Ping, the identity accessors and
// the cleanup messages (Abort, Cancel, DropSession) bypass admission —
// an overloaded or draining site is alive, must answer health probes,
// and must keep releasing deposit buffers.

// AdmissionPolicy bounds concurrent work at one site. The zero value
// of any field selects its default.
type AdmissionPolicy struct {
	// MaxConcurrent is the number of work calls allowed to execute at
	// once. Default 8.
	MaxConcurrent int
	// MaxQueue bounds how many calls may wait for a slot; a call
	// arriving past the queue is rejected immediately. Default 16.
	MaxQueue int
	// MaxWait bounds how long a queued call waits for a slot before it
	// is rejected as overloaded. Default 50ms.
	MaxWait time.Duration
	// RetryAfter is the backpressure hint stamped into Overloaded
	// rejections. Default MaxWait.
	RetryAfter time.Duration
	// DrainTimeout bounds Drain(): in-flight work still running when it
	// elapses is abandoned to its own context. Default 5s.
	DrainTimeout time.Duration
}

func (p AdmissionPolicy) withDefaults() AdmissionPolicy {
	if p.MaxConcurrent <= 0 {
		p.MaxConcurrent = 8
	}
	if p.MaxQueue <= 0 {
		p.MaxQueue = 16
	}
	if p.MaxWait <= 0 {
		p.MaxWait = 50 * time.Millisecond
	}
	if p.RetryAfter <= 0 {
		p.RetryAfter = p.MaxWait
	}
	if p.DrainTimeout <= 0 {
		p.DrainTimeout = 5 * time.Second
	}
	return p
}

// Drainer is the optional graceful-shutdown surface a site may expose
// alongside SiteAPI. It is deliberately not part of SiteAPI — drain is
// an operator action (SIGTERM, the Drain RPC), not a detection step —
// so callers type-assert for it.
type Drainer interface {
	// Drain stops admitting new work and waits for in-flight work to
	// finish, bounded by the policy's DrainTimeout and by ctx. New work
	// is rejected with CodeDraining from the moment Drain is entered,
	// whether or not the wait finished cleanly.
	Drain(ctx context.Context) error
	// Resume re-opens admission after a drain (operator rollback).
	Resume()
	// Draining reports whether the site is currently refusing new work.
	Draining() bool
}

// Admission is the admission-controlled view of a site. Wrap every
// serving site with WithAdmission; it is safe for concurrent use.
type Admission struct {
	inner  SiteAPI
	policy AdmissionPolicy
	sem    chan struct{}

	mu       sync.Mutex
	active   int
	waiters  int
	draining bool
	idle     chan struct{} // non-nil while a Drain waits; closed at active==0
}

// WithAdmission wraps s with an admission controller under policy
// (zero fields take defaults).
func WithAdmission(s SiteAPI, policy AdmissionPolicy) *Admission {
	p := policy.withDefaults()
	return &Admission{inner: s, policy: p, sem: make(chan struct{}, p.MaxConcurrent)}
}

// Inner returns the wrapped site (tests and metrics look behind the
// controller).
func (a *Admission) Inner() SiteAPI { return a.inner }

// Policy returns the effective (defaulted) policy.
func (a *Admission) Policy() AdmissionPolicy { return a.policy }

// Active returns the number of work calls currently executing.
func (a *Admission) Active() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active
}

// Queued returns the number of calls currently waiting for a slot.
func (a *Admission) Queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.waiters
}

func (a *Admission) drainingErr() error {
	return &CodedError{
		Code:        CodeDraining,
		Msg:         fmt.Sprintf("core: site %d draining, not accepting work", a.inner.ID()),
		NotExecuted: true,
	}
}

func (a *Admission) overloadedErr(queued bool) error {
	why := "wait queue full"
	if queued {
		why = "no slot within wait budget"
	}
	return &CodedError{
		Code:        CodeOverloaded,
		Msg:         fmt.Sprintf("core: site %d overloaded (%s), retry after %v", a.inner.ID(), why, a.policy.RetryAfter),
		NotExecuted: true,
		RetryAfter:  a.policy.RetryAfter,
	}
}

// acquire admits one work call: it returns a release func on success,
// or the typed rejection. The fast path (free slot, not draining) is
// one mutex acquisition and a non-blocking channel send.
func (a *Admission) acquire(ctx context.Context) (func(), error) {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return nil, a.drainingErr()
	}
	select {
	case a.sem <- struct{}{}:
		a.active++
		a.mu.Unlock()
		return a.release, nil
	default:
	}
	if a.waiters >= a.policy.MaxQueue {
		a.mu.Unlock()
		return nil, a.overloadedErr(false)
	}
	a.waiters++
	a.mu.Unlock()

	t := time.NewTimer(a.policy.MaxWait)
	defer t.Stop()
	select {
	case a.sem <- struct{}{}:
		a.mu.Lock()
		a.waiters--
		if a.draining {
			// Drain began while this call was queued; it must not start.
			a.mu.Unlock()
			<-a.sem
			return nil, a.drainingErr()
		}
		a.active++
		a.mu.Unlock()
		return a.release, nil
	case <-t.C:
		a.mu.Lock()
		a.waiters--
		a.mu.Unlock()
		return nil, a.overloadedErr(true)
	case <-ctx.Done():
		a.mu.Lock()
		a.waiters--
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

func (a *Admission) release() {
	a.mu.Lock()
	a.active--
	if a.active == 0 && a.idle != nil {
		close(a.idle)
		a.idle = nil
	}
	a.mu.Unlock()
	<-a.sem
}

// do runs one admitted work call.
func (a *Admission) do(ctx context.Context, fn func(SiteAPI) error) error {
	release, err := a.acquire(ctx)
	if err != nil {
		return err
	}
	defer release()
	return fn(a.inner)
}

// Drain implements Drainer: new work is rejected with CodeDraining
// from this moment on; the call returns once in-flight work finished,
// or with an error when DrainTimeout (or ctx) expired first — the
// drain state holds either way.
func (a *Admission) Drain(ctx context.Context) error {
	a.mu.Lock()
	a.draining = true
	if a.active == 0 {
		a.mu.Unlock()
		return nil
	}
	if a.idle == nil {
		a.idle = make(chan struct{})
	}
	idle := a.idle
	a.mu.Unlock()

	t := time.NewTimer(a.policy.DrainTimeout)
	defer t.Stop()
	select {
	case <-idle:
		return nil
	case <-t.C:
		return fmt.Errorf("core: site %d drain timed out after %v with %d call(s) still in flight",
			a.inner.ID(), a.policy.DrainTimeout, a.Active())
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Resume implements Drainer: admission re-opens.
func (a *Admission) Resume() {
	a.mu.Lock()
	a.draining = false
	a.mu.Unlock()
}

// Draining implements Drainer. The inner site's drain state is
// consulted too, so a client-side controller wrapped around a remote
// proxy still surfaces the remote drain signal in HealthDetail.
func (a *Admission) Draining() bool {
	a.mu.Lock()
	d := a.draining
	a.mu.Unlock()
	if d {
		return true
	}
	if ds, ok := a.inner.(interface{ Draining() bool }); ok {
		return ds.Draining()
	}
	return false
}

// ID passes through (identity bypasses admission).
func (a *Admission) ID() int { return a.inner.ID() }

// NumTuples passes through.
func (a *Admission) NumTuples() (int, error) { return a.inner.NumTuples() }

// Predicate passes through.
func (a *Admission) Predicate() (relation.Predicate, error) { return a.inner.Predicate() }

// Ping passes through: liveness is orthogonal to load — an overloaded
// or draining site answers its health probe.
func (a *Admission) Ping(ctx context.Context) error { return a.inner.Ping(ctx) }

// Abort passes through (cleanup must run during drain).
func (a *Admission) Abort(taskKey string) error { return a.inner.Abort(taskKey) }

// Cancel passes through (cleanup must run during drain).
func (a *Admission) Cancel(taskKey string) error { return a.inner.Cancel(taskKey) }

// DropSession passes through (cleanup must run during drain).
func (a *Admission) DropSession(session string) error { return a.inner.DropSession(session) }

// SigmaStats is admitted work.
func (a *Admission) SigmaStats(ctx context.Context, spec *BlockSpec) (out []int, err error) {
	err = a.do(ctx, func(in SiteAPI) error { out, err = in.SigmaStats(ctx, spec); return err })
	return out, err
}

// ExtractBlock is admitted work.
func (a *Admission) ExtractBlock(ctx context.Context, spec *BlockSpec, l int, attrs []string) (out *relation.Relation, err error) {
	err = a.do(ctx, func(in SiteAPI) error { out, err = in.ExtractBlock(ctx, spec, l, attrs); return err })
	return out, err
}

// ExtractMatching is admitted work.
func (a *Admission) ExtractMatching(ctx context.Context, spec *BlockSpec, attrs []string) (out *relation.Relation, err error) {
	err = a.do(ctx, func(in SiteAPI) error { out, err = in.ExtractMatching(ctx, spec, attrs); return err })
	return out, err
}

// ExtractBlocksBatch is admitted work.
func (a *Admission) ExtractBlocksBatch(ctx context.Context, spec *BlockSpec, attrs []string, wanted []int) (out map[int]*relation.Relation, err error) {
	err = a.do(ctx, func(in SiteAPI) error { out, err = in.ExtractBlocksBatch(ctx, spec, attrs, wanted); return err })
	return out, err
}

// Deposit is admitted work.
func (a *Admission) Deposit(ctx context.Context, task string, batch *relation.Relation, nonce string) error {
	return a.do(ctx, func(in SiteAPI) error { return in.Deposit(ctx, task, batch, nonce) })
}

// DetectTask is admitted work.
func (a *Admission) DetectTask(ctx context.Context, task string, local LocalInput, cfds []*cfd.CFD) (out []*relation.Relation, err error) {
	err = a.do(ctx, func(in SiteAPI) error { out, err = in.DetectTask(ctx, task, local, cfds); return err })
	return out, err
}

// DetectAssignedSingle is admitted work.
func (a *Admission) DetectAssignedSingle(ctx context.Context, taskPrefix string, spec *BlockSpec, blocks []int, c *cfd.CFD) (out *relation.Relation, err error) {
	err = a.do(ctx, func(in SiteAPI) error {
		out, err = in.DetectAssignedSingle(ctx, taskPrefix, spec, blocks, c)
		return err
	})
	return out, err
}

// DetectAssignedSet is admitted work.
func (a *Admission) DetectAssignedSet(ctx context.Context, taskPrefix string, spec *BlockSpec, blocks []int, cfds []*cfd.CFD) (out []*relation.Relation, err error) {
	err = a.do(ctx, func(in SiteAPI) error {
		out, err = in.DetectAssignedSet(ctx, taskPrefix, spec, blocks, cfds)
		return err
	})
	return out, err
}

// DetectConstantsLocal is admitted work.
func (a *Admission) DetectConstantsLocal(ctx context.Context, c *cfd.CFD) (out *relation.Relation, err error) {
	err = a.do(ctx, func(in SiteAPI) error { out, err = in.DetectConstantsLocal(ctx, c); return err })
	return out, err
}

// MineFrequent is admitted work.
func (a *Admission) MineFrequent(ctx context.Context, x []string, theta float64) (out []mining.Pattern, err error) {
	err = a.do(ctx, func(in SiteAPI) error { out, err = in.MineFrequent(ctx, x, theta); return err })
	return out, err
}

// ApplyDelta is admitted work.
func (a *Admission) ApplyDelta(ctx context.Context, d relation.Delta, nonce string) (out DeltaInfo, err error) {
	err = a.do(ctx, func(in SiteAPI) error { out, err = in.ApplyDelta(ctx, d, nonce); return err })
	return out, err
}

// ExtractDeltaBlocks is admitted work.
func (a *Admission) ExtractDeltaBlocks(ctx context.Context, spec *BlockSpec, attrs []string, wanted []int, fromGen int64) (out *DeltaBlocks, err error) {
	err = a.do(ctx, func(in SiteAPI) error {
		out, err = in.ExtractDeltaBlocks(ctx, spec, attrs, wanted, fromGen)
		return err
	})
	return out, err
}

// FoldDetect is admitted work.
func (a *Admission) FoldDetect(ctx context.Context, args FoldArgs) (out *FoldReply, err error) {
	err = a.do(ctx, func(in SiteAPI) error { out, err = in.FoldDetect(ctx, args); return err })
	return out, err
}

// DetectParallelism forwards to the inner site when it has the knob.
func (a *Admission) DetectParallelism() int {
	if p, ok := a.inner.(interface{ DetectParallelism() int }); ok {
		return p.DetectParallelism()
	}
	return 0
}

// SetDetectParallelism forwards to the inner site when it has the knob.
func (a *Admission) SetDetectParallelism(n int) {
	if p, ok := a.inner.(interface{ SetDetectParallelism(int) }); ok {
		p.SetDetectParallelism(n)
	}
}

// PendingDeposits forwards the leak-detection counter.
func (a *Admission) PendingDeposits() int {
	if p, ok := a.inner.(interface{ PendingDeposits() int }); ok {
		return p.PendingDeposits()
	}
	return 0
}

// Close forwards to the inner site when it holds resources (a
// store-backed site's mapping and WAL handle).
func (a *Admission) Close() error {
	if c, ok := a.inner.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

var (
	_ SiteAPI = (*Admission)(nil)
	_ Drainer = (*Admission)(nil)
)
