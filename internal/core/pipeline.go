package core

import (
	"context"

	"distcfd/internal/cfd"
	"distcfd/internal/dist"
	"distcfd/internal/relation"
)

// pipelineOut carries the products of the shared σ-block pipeline:
// statistics, the coordinator assignment, and per-CFD, per-site
// violation-pattern relations.
type pipelineOut struct {
	lstat  [][]int
	coords []int
	// parts[ci][j] holds the X-patterns of detectCFDs[ci] found at
	// coordinator site j (nil when j coordinated no blocks).
	parts [][]*relation.Relation
}

// runBlockPipeline executes the common phases of Section IV-B/IV-C
// over an already-built σ spec:
//
//  1. Fi ∧ Fφ pruning,
//  2. parallel local statistics + exchange (control traffic),
//  3. coordinator assignment per the algorithm's policy,
//  4. parallel shipping of non-local blocks (each tuple at most once),
//  5. parallel detection at the coordinators.
//
// The context is checked at every phase boundary and inside the
// shipping loop; once shipping has begun, any failure or cancellation
// cancels the task at every site (drain + tombstone), so a run the
// driver gave up on cannot leave deposits behind — not even a batch
// that was still in flight when the driver stopped waiting.
//
// With restrictSingle, detectCFDs must be a single CFD and each block
// checks only its own pattern row (Lemma 6); otherwise every CFD's
// full tableau is checked inside each block (the ClustDetect
// coordinator step).
func runBlockPipeline(ctx context.Context, cl *Cluster, fs *faultState, spec *BlockSpec, detectCFDs []*cfd.CFD, restrictSingle bool,
	algo Algorithm, opt Options, m *dist.Metrics, fragSizes []int) (*pipelineOut, error) {

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prunedSite, prunedBlock := pruneMatrix(cl.preds, spec)
	// A degraded run treats excluded sites like fully pruned ones — no
	// statistics, no shipping, nothing received — except that pruning
	// keeps them coordinator-eligible while exclusion does not.
	for i := range prunedSite {
		if fs.isExcluded(i) {
			prunedSite[i] = true
		}
	}

	// Local statistics in parallel.
	lstat := make([][]int, cl.N())
	if err := cl.parallelCtx(ctx, func(ctx context.Context, i int) error {
		if prunedSite[i] {
			lstat[i] = make([]int, spec.K())
			return nil
		}
		return cl.callSite(ctx, fs, i, true, func(ctx context.Context) error {
			s, err := cl.sites[i].SigmaStats(ctx, spec)
			if err != nil {
				return err
			}
			for l := range s {
				if prunedBlock[i][l] {
					s[l] = 0
				}
			}
			lstat[i] = s
			return nil
		})
	}); err != nil {
		return nil, err
	}
	// Statistics exchange: involved sites broadcast their lstat vector.
	for i := 0; i < cl.N(); i++ {
		if !prunedSite[i] {
			cl.broadcastControl(m, i, int64(8*spec.K()))
		}
	}

	coords := assign(algo, lstat, fragSizes, opt.Cost, fs.eligible())

	// Shipping. From here on the run owns deposit buffers at other
	// sites: every exit that abandons the run must cancel the task
	// (drain + tombstone), or repeated failed runs against long-lived
	// sites grow memory without bound — task keys are never reused.
	attrs := taskAttrs(spec, detectCFDs)
	task := cl.newTask("blocks")
	if err := cl.parallelCtx(ctx, func(ctx context.Context, i int) error {
		if prunedSite[i] {
			return nil
		}
		var wanted []int
		for l, coord := range coords {
			if coord >= 0 && coord != i && lstat[i][l] > 0 {
				wanted = append(wanted, l)
			}
		}
		if len(wanted) == 0 {
			return nil
		}
		var batches map[int]*relation.Relation
		if err := cl.callSite(ctx, fs, i, true, func(ctx context.Context) error {
			var err error
			batches, err = cl.sites[i].ExtractBlocksBatch(ctx, spec, attrs, wanted)
			return err
		}); err != nil {
			return err
		}
		for _, l := range wanted {
			if err := ctx.Err(); err != nil {
				return err
			}
			if opt.NoPackedShip {
				batches[l].DropPacked()
			}
			if err := cl.ship(ctx, fs, m, i, coords[l], BlockTask(task, l), batches[l]); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		cl.cancelTask(task)
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		cl.cancelTask(task)
		return nil, err
	}

	// Detection at the coordinators.
	bySite := blocksBySite(coords, cl.N())
	parts := make([][]*relation.Relation, len(detectCFDs))
	for ci := range parts {
		parts[ci] = make([]*relation.Relation, cl.N())
	}
	if err := cl.parallelCtx(ctx, func(ctx context.Context, j int) error {
		if len(bySite[j]) == 0 {
			return nil
		}
		// Detection consumes deposits, so it is not idempotent: callSite
		// retries it only while failures provably happened before
		// execution; anything murkier escalates to a unit re-run.
		return cl.callSite(ctx, fs, j, false, func(ctx context.Context) error {
			if restrictSingle {
				pats, err := cl.sites[j].DetectAssignedSingle(ctx, task, spec, bySite[j], detectCFDs[0])
				if err != nil {
					return err
				}
				parts[0][j] = pats
				return nil
			}
			perCFD, err := cl.sites[j].DetectAssignedSet(ctx, task, spec, bySite[j], detectCFDs)
			if err != nil {
				return err
			}
			for ci := range detectCFDs {
				parts[ci][j] = perCFD[ci]
			}
			return nil
		})
	}); err != nil {
		// Coordinators consume deposits as they detect; a partial
		// failure leaves the other coordinators' buffers behind.
		cl.cancelTask(task)
		return nil, err
	}
	return &pipelineOut{lstat: lstat, coords: coords, parts: parts}, nil
}
