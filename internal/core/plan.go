package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"distcfd/internal/cfd"
	"distcfd/internal/dist"
	"distcfd/internal/engine"
	"distcfd/internal/mining"
	"distcfd/internal/relation"
)

// This file is the plan-once/detect-many layer: CompileSingle and
// CompileSet perform every Σ-side computation of Section IV exactly
// once — CFD validation against the cluster schema, constant/variable
// normalization, LHS-containment clustering, σ block-spec construction
// (including the Section IV-B mining preprocessing), and the violation
// pattern schema projections — and return an immutable plan whose
// Detect method re-evaluates only data-dependent state. Plans are safe
// for concurrent Detect calls: each run owns its Metrics and task
// keys, and the sites' fingerprint-keyed caches serve the repeated
// fragment-side routing. The legacy one-shot entry points
// (DetectSingle, SeqDetect, ClustDetect, ParDetect) are thin wrappers
// that compile and immediately run.

// controlReplay is one recorded control-plane broadcast of the compile
// phase (the mined-pattern exchange), replayed into every run's
// metrics so a compiled run reports byte-identical traffic to the
// one-shot path it replaced.
type controlReplay struct {
	from  int
	bytes int64
}

// SinglePlan is the compiled form of a single-CFD detection: the
// validated CFD, its violation-pattern schema, its variable view, and
// the σ-partitioning spec (mined when the options ask for it), ready
// to run any number of times.
type SinglePlan struct {
	cl   *Cluster
	algo Algorithm
	opt  Options
	c    *cfd.CFD

	// kern pools the detection kernel's scratch across this plan's
	// runs: concurrent Detect calls share (and return) one set of
	// buffers instead of reallocating per call. Plans compiled inside a
	// set share the set plan's kernel.
	kern *engine.Kernel

	patternSchema *relation.Schema
	view          *cfd.CFD // nil: constant-only, checked locally
	spec          *BlockSpec
	mined         int
	control       []controlReplay

	// Incremental session state (incremental.go): the one mutable part
	// of a plan, guarded by incMu — DetectIncremental calls serialize,
	// plain Detect stays lock-free and concurrent.
	incMu sync.Mutex
	inc   *unitInc
}

// CompileSingle validates c against the cluster and compiles its
// detection plan under the chosen algorithm and options. When mining
// applies (MineTheta > 0, multi-site, all-wildcard LHS) the sites are
// mined here, once; the resulting spec and the pattern-exchange
// control traffic are captured in the plan.
func CompileSingle(ctx context.Context, cl *Cluster, c *cfd.CFD, algo Algorithm, opt Options) (*SinglePlan, error) {
	opt = opt.withDefaults()
	if err := c.Validate(cl.schema); err != nil {
		return nil, err
	}
	ps, err := cl.schema.Project("viopi_"+c.Name, c.X)
	if err != nil {
		return nil, err
	}
	sp := &SinglePlan{cl: cl, algo: algo, opt: opt, c: c, patternSchema: ps, kern: &engine.Kernel{}}
	view, hasVariable := c.VariableView()
	if !hasVariable {
		return sp, nil
	}
	sp.view = view
	spec, mined, control, err := compileSpec(ctx, cl, view, opt)
	if err != nil {
		return nil, err
	}
	sp.spec, sp.mined, sp.control = spec, mined, control
	return sp, nil
}

// CFD returns the compiled dependency.
func (sp *SinglePlan) CFD() *cfd.CFD { return sp.c }

// Detect runs the compiled plan once, re-evaluating all
// data-dependent state (fragment sizes, constant units, σ routing,
// shipping, coordinator checks) under ctx. Cancellation mid-run
// cancels the task at every site, so no deposit outlives the run.
// Standalone single-CFD plans have one unit, so the whole worker
// budget goes to intra-unit row sharding at the coordinators.
//
// Under an active failure policy (Options.Failure), site failures a
// per-call retry could not absorb re-run the whole attempt — a failed
// attempt cancels its task and discards its metrics, so the attempt
// that succeeds is exactly a clean run.
func (sp *SinglePlan) Detect(ctx context.Context) (*SingleResult, error) {
	fs := newFaultState(sp.cl.N(), sp.opt)
	for attempt := 0; ; attempt++ {
		res, err := sp.detect(ctx, sp.opt.Workers, fs)
		if err == nil {
			sp.finishFailure(res, fs)
			return res, nil
		}
		if retry, rerr := fs.unitFailure(ctx, attempt, err); !retry {
			return nil, rerr
		}
	}
}

// finishFailure stamps the run's fault channel and degraded-result
// fields onto a completed result. Called once per faultState, at the
// top-level entry that created it.
func (sp *SinglePlan) finishFailure(res *SingleResult, fs *faultState) {
	fs.stamp(res.Metrics)
	res.Retries, res.Faults = fs.totals()
	res.ExcludedSites = fs.excludedSites()
	res.Partial = len(res.ExcludedSites) > 0
	if res.Partial {
		if sizes, err := sp.cl.fragmentSizes(); err == nil {
			res.Coverage = fs.coverage(sizes)
		}
	}
}

// detect runs one attempt of the plan with an explicit intra-unit
// worker budget (the set plan's split when the plan runs as a
// singleton unit) under the run's shared fault state.
func (sp *SinglePlan) detect(ctx context.Context, intraWorkers int, fs *faultState) (*SingleResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx = WithDetectResources(ctx, sp.kern, intraWorkers)
	opt := sp.opt
	cl := sp.cl
	start := time.Now()
	m := dist.NewMetrics(cl.N())
	res := &SingleResult{
		CFD:           sp.c,
		Algorithm:     sp.algo,
		Metrics:       m,
		Spec:          sp.spec,
		MinedPatterns: sp.mined,
	}

	fragSizes, err := cl.fragmentSizes()
	if err != nil {
		return nil, err
	}

	// Constant units, locally at every site in parallel (Prop. 5).
	constParts, err := detectConstantsEverywhere(ctx, cl, fs, sp.c)
	if err != nil {
		return nil, err
	}

	if sp.view == nil {
		res.Patterns = mergeDistinct(sp.patternSchema, constParts)
		res.LocalOnly = true
		return finishSingle(cl, res, opt, fragSizes, start)
	}

	// Replay the compile phase's mined-pattern exchange so the run's
	// control matrices match what the one-shot path recorded.
	for _, cb := range sp.control {
		cl.broadcastControl(m, cb.from, cb.bytes)
	}

	out, err := runBlockPipeline(ctx, cl, fs, sp.spec, []*cfd.CFD{sp.view}, true, sp.algo, opt, m, fragSizes)
	if err != nil {
		return nil, err
	}
	res.Coordinators = out.coords
	res.LocalOnly = m.TotalTuples() == 0
	res.Patterns = mergeDistinct(sp.patternSchema, append(constParts, out.parts[0]...))
	return finishSingle(cl, res, opt, fragSizes, start)
}

// clusterPlan is the compiled form of one multi-CFD cluster (≥2
// members sharing LHS containment): the members, their variable views,
// the shared σ spec over W = ∩ LHS, and the per-member pattern
// schemas.
type clusterPlan struct {
	cl   *Cluster
	algo Algorithm
	opt  Options
	kern *engine.Kernel // the owning Plan's scratch pool

	group   []*cfd.CFD
	schemas []*relation.Schema
	views   []*cfd.CFD
	viewIdx []int
	spec    *BlockSpec // nil when every member is constant-only

	// Incremental session state; Plan.DetectIncremental serializes all
	// units under the plan-level lock, so no per-cluster lock is needed.
	inc *unitInc
}

func compileCluster(cl *Cluster, group []*cfd.CFD, algo Algorithm, opt Options) (*clusterPlan, error) {
	cp := &clusterPlan{cl: cl, algo: algo, opt: opt, group: group}
	for _, c := range group {
		if err := c.Validate(cl.schema); err != nil {
			return nil, err
		}
		ps, err := cl.schema.Project("viopi_"+c.Name, c.X)
		if err != nil {
			return nil, err
		}
		cp.schemas = append(cp.schemas, ps)
	}
	for ci, c := range group {
		if v, ok := c.VariableView(); ok {
			cp.views = append(cp.views, v)
			cp.viewIdx = append(cp.viewIdx, ci)
		}
	}
	if len(cp.views) > 0 {
		w := sharedLHS(cp.views)
		if len(w) == 0 {
			return nil, fmt.Errorf("core: cluster with empty shared LHS — clusterByLHS should prevent this")
		}
		spec, err := projectedSpec(w, cp.views)
		if err != nil {
			return nil, err
		}
		cp.spec = spec
	}
	return cp, nil
}

// detect runs one compiled cluster: per-member patterns (aligned with
// the group), the modeled time, and the cluster's metrics.
// intraWorkers is the row-shard budget each coordinator check may use
// (the set plan's split of Options.Workers).
func (cp *clusterPlan) detect(ctx context.Context, intraWorkers int, fs *faultState) ([]*relation.Relation, float64, *dist.Metrics, error) {
	cl := cp.cl
	ctx = WithDetectResources(ctx, cp.kern, intraWorkers)
	m := dist.NewMetrics(cl.N())
	fragSizes, err := cl.fragmentSizes()
	if err != nil {
		return nil, 0, nil, err
	}

	// Constant units of every member, locally (Prop. 5).
	constParts := make([][]*relation.Relation, len(cp.group))
	for ci, c := range cp.group {
		parts, err := detectConstantsEverywhere(ctx, cl, fs, c)
		if err != nil {
			return nil, 0, nil, err
		}
		constParts[ci] = parts
	}

	out := make([]*relation.Relation, len(cp.group))
	for ci := range cp.group {
		out[ci] = mergeDistinct(cp.schemas[ci], constParts[ci])
	}

	modeled := 0.0
	if cp.spec != nil {
		pipe, err := runBlockPipeline(ctx, cl, fs, cp.spec, cp.views, false, cp.algo, cp.opt, m, fragSizes)
		if err != nil {
			return nil, 0, nil, err
		}
		for vi, ci := range cp.viewIdx {
			merged := mergeDistinct(out[ci].Schema(), append([]*relation.Relation{out[ci]}, pipe.parts[vi]...))
			out[ci] = merged
		}
		checkSizes := make([]int, cl.N())
		for i := range checkSizes {
			checkSizes[i] = fragSizes[i] + int(m.ReceivedBy(i))
		}
		modeled = cp.opt.Cost.ResponseTime(m, checkSizes)
	} else {
		modeled = cp.opt.Cost.ResponseTime(m, fragSizes)
	}
	for ci, c := range cp.group {
		if err := out[ci].SortBy(c.X...); err != nil {
			return nil, 0, nil, err
		}
	}
	return out, modeled, m, nil
}

// planUnit is one independently runnable piece of a set plan: a
// singleton CFD (processed exactly like DetectSingle) or a compiled
// multi-member cluster.
type planUnit struct {
	members []int
	single  *SinglePlan
	multi   *clusterPlan
}

// detect runs one unit under the set run's shared fault state: each
// attempt is a fresh pipeline with fresh metrics (failed attempts
// cancel their tasks and report nothing), re-run per the policy until
// it succeeds or the unit budget is spent.
func (u *planUnit) detect(ctx context.Context, intraWorkers int, fs *faultState) ([]*relation.Relation, float64, *dist.Metrics, error) {
	for attempt := 0; ; attempt++ {
		pats, modeled, m, err := u.detectOnce(ctx, intraWorkers, fs)
		if err == nil {
			return pats, modeled, m, nil
		}
		if retry, rerr := fs.unitFailure(ctx, attempt, err); !retry {
			return nil, 0, nil, rerr
		}
	}
}

func (u *planUnit) detectOnce(ctx context.Context, intraWorkers int, fs *faultState) ([]*relation.Relation, float64, *dist.Metrics, error) {
	if u.single != nil {
		one, err := u.single.detect(ctx, intraWorkers, fs)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("core: cfd %s: %w", u.single.c.Name, err)
		}
		return []*relation.Relation{one.Patterns}, one.ModeledTime, one.Metrics, nil
	}
	return u.multi.detect(ctx, intraWorkers, fs)
}

// Plan is the compiled form of a multi-CFD detection request over a
// cluster: the CFD set, its clustering, and one compiled unit per
// cluster. A Plan is immutable after compilation and safe for
// concurrent Detect calls.
type Plan struct {
	cl       *Cluster
	algo     Algorithm
	opt      Options
	cfds     []*cfd.CFD
	clusters [][]int
	units    []*planUnit
	kern     *engine.Kernel // plan-wide detection scratch pool

	// Σ analysis artifacts (Options.Sigma): the static-analysis report
	// and the duplicate CFDs compiled away as aliases of their
	// representative. Both nil/empty under SigmaOff.
	sigma   *cfd.SigmaReport
	aliases []sigmaAlias

	// incMu serializes DetectIncremental rounds (they mutate the
	// per-unit sessions); Detect stays lock-free and concurrent.
	incMu sync.Mutex
}

// CompileSet compiles the detection plan for a CFD set. With clustered
// true, CFDs whose LHS attribute sets are related by containment are
// merged into shared-σ clusters (the ClustDetect strategy); otherwise
// every CFD is its own unit (the SeqDetect strategy). All Σ-side work
// — validation, clustering, spec construction, mining — happens here.
func CompileSet(ctx context.Context, cl *Cluster, cfds []*cfd.CFD, algo Algorithm, opt Options, clustered bool) (*Plan, error) {
	if len(cfds) == 0 {
		return nil, fmt.Errorf("core: compile with no CFDs")
	}
	opt = opt.withDefaults()
	sigmaReport, active, aliases, err := analyzeSigma(cl, cfds, opt.Sigma, clustered)
	if err != nil {
		return nil, err
	}
	var clusters [][]int
	if clustered {
		sub := make([]*cfd.CFD, len(active))
		for i, idx := range active {
			sub[i] = cfds[idx]
		}
		for _, g := range clusterByLHS(sub) {
			mapped := make([]int, len(g))
			for j, si := range g {
				mapped[j] = active[si]
			}
			clusters = append(clusters, mapped)
		}
	} else {
		clusters = make([][]int, len(active))
		for i, idx := range active {
			clusters[i] = []int{idx}
		}
	}
	p := &Plan{cl: cl, algo: algo, opt: opt, cfds: cfds, clusters: clusters, kern: &engine.Kernel{},
		sigma: sigmaReport, aliases: aliases}
	for _, members := range clusters {
		u := &planUnit{members: members}
		if len(members) == 1 {
			sp, err := CompileSingle(ctx, cl, cfds[members[0]], algo, opt)
			if err != nil {
				return nil, fmt.Errorf("core: cfd %s: %w", cfds[members[0]].Name, err)
			}
			sp.kern = p.kern // units of one plan share its scratch pool
			u.single = sp
		} else {
			group := make([]*cfd.CFD, len(members))
			for i, idx := range members {
				group[i] = cfds[idx]
			}
			cp, err := compileCluster(cl, group, algo, opt)
			if err != nil {
				return nil, err
			}
			cp.kern = p.kern
			u.multi = cp
		}
		p.units = append(p.units, u)
	}
	return p, nil
}

// CFDs returns the compiled dependency set.
func (p *Plan) CFDs() []*cfd.CFD { return p.cfds }

// Clusters returns the CFD index groups processed together. Under
// Options.SigmaPrune, CFDs collapsed as duplicates appear in no group
// — they are served as aliases of their representative.
func (p *Plan) Clusters() [][]int { return p.clusters }

// SigmaReport returns the compile-time Σ analysis report, or nil when
// the plan was compiled with Options.SigmaOff.
func (p *Plan) SigmaReport() *cfd.SigmaReport { return p.sigma }

// SinglePlanFor returns the compiled single-CFD plan of cfds[i] when
// the set plan processes it as a singleton unit (always, when compiled
// without clustering), or nil when it is part of a merged cluster.
func (p *Plan) SinglePlanFor(i int) *SinglePlan {
	for _, u := range p.units {
		if u.single != nil && u.members[0] == i {
			return u.single
		}
	}
	return nil
}

// errParCanceled marks units a parallel run skipped after another unit
// failed; it never escapes Detect.
var errParCanceled = errors.New("core: cluster skipped after earlier failure")

// splitWorkers divides a run's worker budget between cluster-level
// overlap and intra-unit row sharding: clusters can use at most one
// worker each (they are whole pipelines), so the level-1 pool is
// capped at the unit count and the leftover factor drops into the
// detection kernel. budget ≤ 1 stays strictly serial at both levels.
func splitWorkers(budget, units int) (clusterWorkers, intraWorkers int) {
	if budget < 1 {
		budget = 1
	}
	clusterWorkers = budget
	if units >= 1 && clusterWorkers > units {
		clusterWorkers = units
	}
	intraWorkers = budget / clusterWorkers
	if intraWorkers < 1 {
		intraWorkers = 1
	}
	return clusterWorkers, intraWorkers
}

// Detect runs the compiled plan once. Options.Workers is split
// between the two levels of parallelism instead of fighting over
// cores: up to len(units) workers process independent CFD clusters
// concurrently, and the remainder of the budget shards the per-row
// work inside each coordinator check (intra-unit row sharding). With
// many clusters the budget goes to cluster overlap, exactly as
// before; with one big merged cluster — the common shape after
// shared-σ clustering — the whole budget drops into the kernel.
// Results are merged in deterministic cluster order, so the violation
// sets, shipment totals, and modeled time are identical at every
// worker count. Cancellation mid-run stops pending units and cancels
// in-flight tasks at every site.
func (p *Plan) Detect(ctx context.Context) (*SetResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	fs := newFaultState(p.cl.N(), p.opt)
	for {
		excludedBefore := fs.excludedCount()
		res, err := p.detectPass(ctx, fs, start)
		if err != nil {
			return nil, err
		}
		// A FailDegrade run whose exclusion set grew mid-pass re-runs
		// every unit: units that completed before the exclusion saw the
		// richer site set, and a coherent degraded result must cover one
		// stable reachable-fragment set. Exclusions only grow and are
		// bounded by the site count, so this terminates; a fault-free
		// run is always a single pass.
		if fs.excludedCount() == excludedBefore {
			p.finishFailure(res, fs)
			return res, nil
		}
	}
}

// finishFailure stamps the fault channel and the degraded-result
// fields onto a completed set result (once per run).
func (p *Plan) finishFailure(res *SetResult, fs *faultState) {
	fs.stamp(res.Metrics)
	res.Retries, res.Faults = fs.totals()
	res.ExcludedSites = fs.excludedSites()
	res.Partial = len(res.ExcludedSites) > 0
	res.Coverage = 1
	if res.Partial {
		if sizes, err := p.cl.fragmentSizes(); err == nil {
			res.Coverage = fs.coverage(sizes)
		}
	}
}

// detectPass runs every unit once (with per-unit retries under the
// shared fault state) and assembles a SetResult.
func (p *Plan) detectPass(ctx context.Context, fs *faultState, start time.Time) (*SetResult, error) {
	type unitOut struct {
		pats    []*relation.Relation
		modeled float64
		m       *dist.Metrics
		err     error
	}
	outs := make([]unitOut, len(p.units))
	clusterWorkers, intraWorkers := splitWorkers(p.opt.Workers, len(p.units))

	if clusterWorkers <= 1 {
		for gi, u := range p.units {
			pats, modeled, m, err := u.detect(ctx, intraWorkers, fs)
			if err != nil {
				return nil, err
			}
			outs[gi] = unitOut{pats: pats, modeled: modeled, m: m}
		}
	} else {
		sem := make(chan struct{}, clusterWorkers)
		var wg sync.WaitGroup
		var failed atomic.Bool
		for gi, u := range p.units {
			wg.Add(1)
			go func(gi int, u *planUnit) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				// Fail fast: once any unit has errored or the context has
				// died, units that have not started yet are skipped instead
				// of shipping tuples the caller will discard.
				if failed.Load() || ctx.Err() != nil {
					outs[gi].err = errParCanceled
					return
				}
				pats, modeled, m, err := u.detect(ctx, intraWorkers, fs)
				if err != nil {
					failed.Store(true)
				}
				outs[gi] = unitOut{pats: pats, modeled: modeled, m: m, err: err}
			}(gi, u)
		}
		wg.Wait()
		for _, out := range outs {
			if out.err != nil && !errors.Is(out.err, errParCanceled) {
				return nil, out.err
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	total := dist.NewMetrics(p.cl.N())
	res := &SetResult{
		CFDs:     p.cfds,
		Metrics:  total,
		PerCFD:   make([]*relation.Relation, len(p.cfds)),
		Clusters: p.clusters,
		Coverage: 1,
	}
	unitModeled := make([]float64, len(outs))
	unitMetrics := make([]*dist.Metrics, len(outs))
	for gi, out := range outs {
		total.Merge(out.m)
		unitModeled[gi], unitMetrics[gi] = out.modeled, out.m
		for i, idx := range p.clusters[gi] {
			res.PerCFD[idx] = out.pats[i]
		}
	}
	p.fillAliases(res, unitMetrics)
	res.ModeledTime = p.modeledSum(unitModeled)
	res.ShippedTuples = total.TotalTuples()
	res.WallTime = time.Since(start)
	return res, nil
}

// compileSpec derives the σ-partitioning for a variable view. When
// mining is enabled and every LHS pattern is all-wildcard (the CFD is
// effectively an FD), the sites mine closed frequent patterns which
// replace the wildcard row, keeping a catch-all wildcard row last; the
// pattern-exchange control traffic is recorded for replay into each
// run's metrics.
func compileSpec(ctx context.Context, cl *Cluster, view *cfd.CFD, opt Options) (*BlockSpec, int, []controlReplay, error) {
	useMining := opt.MineTheta > 0 && cl.N() > 1 && allWildcardLHS(view)
	if !useMining {
		spec, err := SpecFromCFD(view)
		return spec, 0, nil, err
	}
	lists := make([][]mining.Pattern, cl.N())
	if err := cl.parallelCtx(ctx, func(ctx context.Context, i int) error {
		ps, err := cl.sites[i].MineFrequent(ctx, view.X, opt.MineTheta)
		if err != nil {
			return err
		}
		lists[i] = ps
		return nil
	}); err != nil {
		return nil, 0, nil, err
	}
	// Pattern exchange: each site broadcasts its mined patterns
	// (control traffic, not tuple shipment) — recorded here, charged at
	// every run.
	var control []controlReplay
	for i, ps := range lists {
		var bytes int64
		for _, p := range ps {
			for _, v := range p.Vals {
				bytes += int64(len(v)) + 1
			}
			bytes += 8 // the support share
		}
		if bytes > 0 {
			control = append(control, controlReplay{from: i, bytes: bytes})
		}
	}
	// Concentration-ranked merge (see mining.MergeRanked): among
	// equally general patterns, the one dense at a single site claims
	// its tuples first, keeping that block local.
	merged := mining.MergeRanked(lists...)
	patterns := make([][]string, 0, len(merged)+1)
	for _, p := range merged {
		patterns = append(patterns, p.Vals)
	}
	wild := make([]string, len(view.X))
	for i := range wild {
		wild[i] = cfd.Wildcard
	}
	patterns = append(patterns, wild)
	spec, err := NewBlockSpecOrdered(view.X, patterns)
	if err != nil {
		return nil, 0, nil, err
	}
	return spec, len(merged), control, nil
}
