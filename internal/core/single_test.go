package core

import (
	"context"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"distcfd/internal/cfd"
	"distcfd/internal/partition"
	"distcfd/internal/relation"
)

// TestExample5CTRDetect replays Example 5: for φ1 over the Fig. 1(b)
// partition, CTRDetect picks S2 (our site 1) as coordinator — DH2 has
// four matching tuples — and ships exactly four tuples (t2, t9, t10
// from S1 and t5 from S3).
func TestExample5CTRDetect(t *testing.T) {
	cl := fig1bCluster(t)
	res, err := DetectSingle(cl, phi1, CTRDetect, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for l, c := range res.Coordinators {
		if c != 1 {
			t.Errorf("block %d coordinator = %d, want 1 (S2)", l, c)
		}
	}
	if res.ShippedTuples != 4 {
		t.Errorf("shipped %d tuples, want 4", res.ShippedTuples)
	}
	wantPatterns(t, "phi1 CTR", res.Patterns, "44\x1fEH4 8LE", "31\x1f1012 WR")
}

// TestExample6PatDetectS replays Example 6: per-pattern coordinators
// are S2 for (44, _) and S1 for (31, _); total shipment drops to 3.
func TestExample6PatDetectS(t *testing.T) {
	cl := fig1bCluster(t)
	res, err := DetectSingle(cl, phi1, PatDetectS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec == nil || res.Spec.K() != 2 {
		t.Fatalf("spec = %v", res.Spec)
	}
	// Identify which block is the 44 pattern.
	block44, block31 := -1, -1
	for l, p := range res.Spec.Patterns {
		switch p[0] {
		case "44":
			block44 = l
		case "31":
			block31 = l
		}
	}
	if block44 < 0 || block31 < 0 {
		t.Fatalf("patterns = %v", res.Spec.Patterns)
	}
	if res.Coordinators[block44] != 1 {
		t.Errorf("coordinator for (44,_) = %d, want 1 (S2)", res.Coordinators[block44])
	}
	if res.Coordinators[block31] != 0 {
		t.Errorf("coordinator for (31,_) = %d, want 0 (S1)", res.Coordinators[block31])
	}
	if res.ShippedTuples != 3 {
		t.Errorf("shipped %d tuples, want 3", res.ShippedTuples)
	}
	wantPatterns(t, "phi1 PatS", res.Patterns, "44\x1fEH4 8LE", "31\x1f1012 WR")
}

// TestExample4ConstantLocal replays Example 4 / Proposition 5: the
// constant CFD φ3 is checked locally with zero shipment; violations
// are the patterns of t2, t3 (ψ1) and t6 (ψ2).
func TestExample4ConstantLocal(t *testing.T) {
	cl := fig1bCluster(t)
	for _, algo := range []Algorithm{CTRDetect, PatDetectS, PatDetectRT} {
		res, err := DetectSingle(cl, phi3, algo, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.LocalOnly {
			t.Errorf("%v: constant CFD should be local-only", algo)
		}
		if res.ShippedTuples != 0 {
			t.Errorf("%v: shipped %d tuples, want 0", algo, res.ShippedTuples)
		}
		wantPatterns(t, "phi3 "+algo.String(), res.Patterns, "44\x1f131", "01\x1f908")
	}
}

// TestPhi2FDSatisfied: D0 satisfies the FD φ2; all algorithms must
// report no violations on any partitioning.
func TestPhi2FDSatisfied(t *testing.T) {
	for _, mk := range []func() *Cluster{
		func() *Cluster { return fig1bCluster(t) },
		func() *Cluster { return uniformCluster(t, 4, 11) },
	} {
		cl := mk()
		for _, algo := range []Algorithm{CTRDetect, PatDetectS, PatDetectRT} {
			res, err := DetectSingle(cl, phi2, algo, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Patterns.Len() != 0 {
				t.Errorf("%v: φ2 violations = %v, want none", algo, res.Patterns)
			}
		}
	}
}

// TestAllAlgorithmsAgreeWithOracle is the central correctness test:
// on randomized data, partitions and CFDs, every algorithm must return
// exactly the centralized Vioπ patterns.
func TestAllAlgorithmsAgreeWithOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 25; trial++ {
		d := randomRelation(rng, 30+rng.Intn(60))
		c := randomTestCFD(rng)
		n := 2 + rng.Intn(4)
		h, err := partition.Uniform(d, n, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		cl, err := FromHorizontal(h)
		if err != nil {
			t.Fatal(err)
		}
		// Centralized oracle.
		vio, err := cfd.NaiveViolations(d, c)
		if err != nil {
			t.Fatal(err)
		}
		want := oraclePatterns(t, d, c, vio)
		for _, algo := range []Algorithm{CTRDetect, PatDetectS, PatDetectRT} {
			res, err := DetectSingle(cl, c, algo, Options{})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, algo, err)
			}
			got := patternsOf(res.Patterns)
			if !sameSet(got, want) {
				t.Fatalf("trial %d %v:\n got %v\nwant %v\ncfd %v", trial, algo, keys(got), keys(want), c)
			}
		}
	}
}

func oraclePatterns(t *testing.T, d *relation.Relation, c *cfd.CFD, vio []int) map[string]bool {
	t.Helper()
	xi, err := d.Schema().Indices(c.X)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, i := range vio {
		// Same join as patternsOf: fixtures are separator-free.
		out[strings.Join(d.Tuple(i).Project(xi), "\x1f")] = true
	}
	return out
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestShipOnceInvariant checks the paper's guarantee that each tuple
// (attribute projection) is shipped at most once per CFD: total
// shipment equals the matching tuples held away from their block's
// coordinator.
func TestShipOnceInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		d := randomRelation(rng, 80)
		c := randomTestCFD(rng)
		view, ok := c.VariableView()
		if !ok {
			continue
		}
		h, err := partition.Uniform(d, 3, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		cl, err := FromHorizontal(h)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []Algorithm{CTRDetect, PatDetectS, PatDetectRT} {
			res, err := DetectSingle(cl, c, algo, Options{})
			if err != nil {
				t.Fatal(err)
			}
			spec, err := SpecFromCFD(view)
			if err != nil {
				t.Fatal(err)
			}
			var expect int64
			for i := 0; i < cl.N(); i++ {
				site := cl.Site(i).(*Site)
				stats, err := site.SigmaStats(context.Background(), spec)
				if err != nil {
					t.Fatal(err)
				}
				for l, cnt := range stats {
					if res.Coordinators[l] >= 0 && res.Coordinators[l] != i {
						expect += int64(cnt)
					}
				}
			}
			if res.ShippedTuples != expect {
				t.Errorf("%v: shipped %d, expected exactly %d (each matching tuple once)",
					algo, res.ShippedTuples, expect)
			}
		}
	}
}

// TestPatShipmentNeverWorseThanCTR: PatDetectS minimizes shipment per
// pattern, so its total shipment is ≤ CTRDetect's on any instance.
func TestPatShipmentNeverWorseThanCTR(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 15; trial++ {
		d := randomRelation(rng, 100)
		c := randomTestCFD(rng)
		h, err := partition.Uniform(d, 4, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		cl, err := FromHorizontal(h)
		if err != nil {
			t.Fatal(err)
		}
		ctr, err := DetectSingle(cl, c, CTRDetect, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pats, err := DetectSingle(cl, c, PatDetectS, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if pats.ShippedTuples > ctr.ShippedTuples {
			t.Errorf("trial %d: PatDetectS shipped %d > CTRDetect %d",
				trial, pats.ShippedTuples, ctr.ShippedTuples)
		}
	}
}

// TestPredicatePruningAvoidsShipment: partitioning by CC co-locates
// every CFD pattern group of φ1, so nothing ships, and the fragment
// predicates prove it without touching statistics of pruned sites.
func TestPredicatePruningAvoidsShipment(t *testing.T) {
	d := empD0()
	h, err := partition.ByAttribute(d, "CC")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := FromHorizontal(h)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectSingle(cl, phi1, PatDetectS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShippedTuples != 0 {
		t.Errorf("shipped %d tuples, want 0 (groups co-located)", res.ShippedTuples)
	}
	wantPatterns(t, "phi1 by-CC", res.Patterns, "44\x1fEH4 8LE", "31\x1f1012 WR")

	// Pruning matrix: the CC=01 fragment is pruned for both patterns.
	spec, err := SpecFromCFD(phi1)
	if err != nil {
		t.Fatal(err)
	}
	prunedSite, _ := pruneMatrix(cl.Predicates(), spec)
	cc01 := -1
	for i, p := range cl.Predicates() {
		if strings.Contains(p.String(), "CC = 01") {
			cc01 = i
		}
	}
	if cc01 < 0 {
		t.Fatal("no CC=01 fragment found")
	}
	if !prunedSite[cc01] {
		t.Error("CC=01 site should be fully pruned for phi1")
	}
}

// TestMiningReducesShipment: an FD over skewed, site-correlated data
// ships dramatically less with mining enabled (Exp-4's effect).
func TestMiningReducesShipment(t *testing.T) {
	// Data: attribute "a" is highly skewed and correlated with the
	// fragment, so mined patterns keep blocks local.
	s := relation.MustSchema("R", []string{"id", "a", "b"}, "id")
	d := relation.New(s)
	id := 0
	for frag := 0; frag < 4; frag++ {
		for i := 0; i < 100; i++ {
			d.MustAppend(relation.Tuple{
				itoa(id),
				"v" + itoa(frag), // dominant value per future fragment
				"w" + itoa(id%5),
			})
			id++
		}
	}
	// Partition by a: each fragment holds one dominant value.
	h, err := partition.ByAttribute(d, "a")
	if err != nil {
		t.Fatal(err)
	}
	// Drop predicates to isolate the mining effect from pruning.
	h.Predicates = nil
	cl, err := FromHorizontal(h)
	if err != nil {
		t.Fatal(err)
	}
	fd := cfd.MustParse(`fd: [a] -> [b]`)

	plain, err := DetectSingle(cl, fd, PatDetectS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mined, err := DetectSingle(cl, fd, PatDetectS, Options{MineTheta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if mined.MinedPatterns == 0 {
		t.Fatal("expected mined patterns at theta=0.5 on constant-per-fragment data")
	}
	if mined.ShippedTuples >= plain.ShippedTuples {
		t.Errorf("mining did not reduce shipment: %d >= %d", mined.ShippedTuples, plain.ShippedTuples)
	}
	if mined.ShippedTuples != 0 {
		t.Errorf("perfectly correlated fragments should ship 0 with mining, got %d", mined.ShippedTuples)
	}
	// Same answers.
	if !sameSet(patternsOf(plain.Patterns), patternsOf(mined.Patterns)) {
		t.Error("mining changed the violation set")
	}
}

// TestMiningPreservesCorrectness on random data: mining must never
// change the detected violation patterns.
func TestMiningPreservesCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	fd := cfd.MustParse(`fd: [a, b] -> [c]`)
	for trial := 0; trial < 8; trial++ {
		d := randomRelation(rng, 120)
		h, err := partition.Uniform(d, 3, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		cl, err := FromHorizontal(h)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := DetectSingle(cl, fd, PatDetectS, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, theta := range []float64{0.05, 0.2, 0.8} {
			mined, err := DetectSingle(cl, fd, PatDetectS, Options{MineTheta: theta})
			if err != nil {
				t.Fatal(err)
			}
			if !sameSet(patternsOf(plain.Patterns), patternsOf(mined.Patterns)) {
				t.Errorf("trial %d theta %v: mining changed violations", trial, theta)
			}
		}
	}
}

// TestSingleSiteCluster: with one site everything is local.
func TestSingleSiteCluster(t *testing.T) {
	cl := uniformCluster(t, 1, -1)
	res, err := DetectSingle(cl, phi1, PatDetectRT, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShippedTuples != 0 {
		t.Errorf("single site shipped %d tuples", res.ShippedTuples)
	}
	wantPatterns(t, "phi1 single-site", res.Patterns, "44\x1fEH4 8LE", "31\x1f1012 WR")
}

// TestResultBookkeeping sanity-checks the auxiliary result fields.
func TestResultBookkeeping(t *testing.T) {
	cl := fig1bCluster(t)
	res, err := DetectSingle(cl, phi1, PatDetectRT, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ModeledTime <= 0 {
		t.Error("modeled time should be positive")
	}
	if res.WallTime <= 0 {
		t.Error("wall time should be positive")
	}
	if len(res.CheckSizes) != cl.N() {
		t.Errorf("check sizes = %v", res.CheckSizes)
	}
	total := 0
	for i, cs := range res.CheckSizes {
		frag, _ := cl.Site(i).NumTuples()
		if cs < frag {
			t.Errorf("check size %d < fragment size %d", cs, frag)
		}
		total += cs - frag
	}
	if int64(total) != res.ShippedTuples {
		t.Errorf("received total %d != shipped %d", total, res.ShippedTuples)
	}
	// Vio is the padded form of Patterns.
	if res.Vio.Len() != res.Patterns.Len() {
		t.Errorf("padded Vio %d rows vs %d patterns", res.Vio.Len(), res.Patterns.Len())
	}
	name := res.Vio.Schema().MustIndex("name")
	for _, tu := range res.Vio.Tuples() {
		if tu[name] != relation.Null {
			t.Errorf("non-X attribute not null: %v", tu)
		}
	}
	if res.Vio.Schema().Arity() != cl.Schema().Arity() {
		t.Error("Vio schema should be the full relation schema")
	}
}

// TestDetectSingleValidation rejects CFDs off-schema.
func TestDetectSingleValidation(t *testing.T) {
	cl := fig1bCluster(t)
	bad := cfd.MustParse(`[missing] -> [city]`)
	if _, err := DetectSingle(cl, bad, PatDetectS, Options{}); err == nil {
		t.Error("expected schema validation error")
	}
}

func itoa(i int) string { return strconv.Itoa(i) }
