package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"distcfd/internal/cfd"
	"distcfd/internal/dist"
	"distcfd/internal/relation"
)

// This file is the driver half of incremental detection. A compiled
// plan retains, per unit, an incremental session: a sticky coordinator
// assignment, a per-site fold watermark (fragment generation), and the
// session key naming the group states the coordinators keep. A
// DetectIncremental round then
//
//  1. recomputes the run's *accounting* exactly as a fresh Detect
//     would — per-block statistics come from the sites' maintained σ
//     entries, the coordinator policy re-runs on them, and the
//     shipments that fresh run would make are charged to the metrics'
//     regular channel — so ShippedTuples, ModeledTime, and the
//     violation output of an incremental round are byte-identical to
//     a fresh compiled Detect on the same data;
//  2. moves only deltas: every site σ-routes its logged delta suffix,
//     ships the per-block inserts and delete records to the sticky
//     coordinators (the delta channel of dist.Metrics), and each
//     coordinator folds them into its retained group states.
//
// The first round (and any round the sites report stale state for —
// trimmed log, evicted session, foreign mutation) seeds: full blocks
// ship once as one big insert delta, rebuilding the retained state;
// a delete-heavy history (Options.DeltaFallbackRatio) reseeds too.
// Sticky coordinators may drift from what the current statistics
// would choose; that changes which site folds a block, never the
// violation union or the reported (fresh-equivalent) accounting.

// unitInc is the retained driver state of one plan unit's session.
type unitInc struct {
	session       string
	sticky        []int
	foldedGen     []int64
	seeded        bool
	delsSinceSeed int
}

func newUnitInc(k, n int) *unitInc {
	return &unitInc{sticky: make([]int, k), foldedGen: make([]int64, n)}
}

// invalidate abandons the session after a failed round: deposits are
// drained (and late arrivals tombstoned), coordinator states dropped,
// and the next round reseeds under a fresh key.
func (st *unitInc) invalidate(cl *Cluster) {
	if st.session != "" {
		cl.cancelTask(st.session)
		cl.dropSession(st.session)
	}
	st.session = ""
	st.seeded = false
}

// incPipeOut mirrors pipelineOut for the incremental pipeline.
type incPipeOut struct {
	coords []int
	parts  [][]*relation.Relation
}

// runIncrementalPipeline executes one incremental round of the σ-block
// pipeline over an already-built spec: fresh-equivalent accounting
// into m's regular channel, delta movement on the delta channel, folds
// at the sticky coordinators. A stale-state failure retries once with
// a full reseed; any error leaves the session invalidated (zero
// retained deposits) and the next call reseeds.
func runIncrementalPipeline(ctx context.Context, cl *Cluster, fs *faultState, spec *BlockSpec, detectCFDs []*cfd.CFD,
	restrictSingle bool, algo Algorithm, opt Options, m *dist.Metrics, fragSizes []int, st *unitInc) (*incPipeOut, error) {

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	prunedSite, prunedBlock := pruneMatrix(cl.preds, spec)

	// Local statistics, as a fresh run computes them — the sites serve
	// the maintained σ entries, so this is O(K) per site after deltas.
	lstat := make([][]int, cl.N())
	if err := cl.parallelCtx(ctx, func(ctx context.Context, i int) error {
		if prunedSite[i] {
			lstat[i] = make([]int, spec.K())
			return nil
		}
		return cl.callSite(ctx, fs, i, true, func(ctx context.Context) error {
			s, err := cl.sites[i].SigmaStats(ctx, spec)
			if err != nil {
				return err
			}
			for l := range s {
				if prunedBlock[i][l] {
					s[l] = 0
				}
			}
			lstat[i] = s
			return nil
		})
	}); err != nil {
		return nil, err
	}
	for i := 0; i < cl.N(); i++ {
		if !prunedSite[i] {
			cl.broadcastControl(m, i, int64(8*spec.K()))
		}
	}

	coords := assign(algo, lstat, fragSizes, opt.Cost, fs.eligible())

	// Fresh-equivalent shipment accounting: exactly the blocks a fresh
	// run would move, charged as tuple counts (payload bytes live on
	// the delta channel — they are what actually crossed the wire).
	for l, coord := range coords {
		if coord < 0 {
			continue
		}
		for i := 0; i < cl.N(); i++ {
			if i != coord && lstat[i][l] > 0 {
				m.ShipTuples(i, coord, lstat[i][l], 0)
			}
		}
	}

	// Each attempt records its delta shipments on its own metrics,
	// merged into the round's only on success: a stale-state retry must
	// not fold the aborted attempt's traffic into the figures. Under an
	// active failure policy, a transient failure that escaped the
	// per-call retries recovers the same way a stale session does —
	// invalidate and reseed — up to the unit attempt budget. (The
	// incremental path never excludes sites; FailDegrade behaves like
	// FailRetry here.)
	attempts := 2
	if fs.active() {
		if ua := fs.retry.withDefaults().UnitAttempts; ua > attempts {
			attempts = ua
		}
	}
	var parts [][]*relation.Relation
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		attemptM := dist.NewMetrics(cl.N())
		parts, err = st.dataRound(ctx, cl, fs, spec, detectCFDs, restrictSingle, attemptM, prunedSite, coords, fragSizes, opt)
		if err == nil {
			m.Merge(attemptM)
			return &incPipeOut{coords: coords, parts: parts}, nil
		}
		st.invalidate(cl)
		if ctx.Err() != nil {
			return nil, err
		}
		retryable := IsStaleIncremental(err) || (fs.active() && isTransient(err))
		if !retryable {
			return nil, err
		}
	}
	return nil, err
}

// dataRound runs the movement-and-fold half of one round: extraction
// of delta (or, seeding, full) blocks at every site, shipping to the
// sticky coordinators, folding, and watermark commit.
func (st *unitInc) dataRound(ctx context.Context, cl *Cluster, fs *faultState, spec *BlockSpec, detectCFDs []*cfd.CFD,
	restrictSingle bool, m *dist.Metrics, prunedSite []bool, freshCoords []int, fragSizes []int, opt Options) ([][]*relation.Relation, error) {

	attrs := taskAttrs(spec, detectCFDs)
	n := cl.N()
	seeding := !st.seeded
	replies := make([]*DeltaBlocks, n)

	extract := func(sticky []int, fromGen func(int) int64) error {
		return cl.parallelCtx(ctx, func(ctx context.Context, i int) error {
			if prunedSite[i] {
				return nil
			}
			var wanted []int
			for l, coord := range sticky {
				if coord >= 0 && coord != i {
					wanted = append(wanted, l)
				}
			}
			return cl.callSite(ctx, fs, i, true, func(ctx context.Context) error {
				rep, err := cl.sites[i].ExtractDeltaBlocks(ctx, spec, attrs, wanted, fromGen(i))
				if err != nil {
					return err
				}
				replies[i] = rep
				return nil
			})
		})
	}

	if !seeding {
		// Blocks born since the seed (empty cluster-wide back then)
		// get a coordinator now; their whole content arrives as deltas.
		newSticky := append([]int(nil), st.sticky...)
		for l := range newSticky {
			if newSticky[l] < 0 {
				newSticky[l] = freshCoords[l]
			}
		}
		if err := extract(newSticky, func(i int) int64 { return st.foldedGen[i] }); err != nil {
			if !IsStaleIncremental(err) {
				return nil, err
			}
			seeding = true
		} else {
			dels := st.delsSinceSeed
			total := 0
			for i, rep := range replies {
				total += fragSizes[i]
				if rep != nil {
					dels += rep.TotalDel
				}
			}
			if float64(dels) > opt.DeltaFallbackRatio*float64(total) {
				seeding = true
			} else {
				st.delsSinceSeed = dels
				st.sticky = newSticky
			}
		}
	}
	if seeding {
		st.invalidate(cl)
		st.session = cl.newTask("inc")
		st.sticky = append([]int(nil), freshCoords...)
		st.foldedGen = make([]int64, n)
		st.delsSinceSeed = 0
		replies = make([]*DeltaBlocks, n)
		if err := extract(st.sticky, func(int) int64 { return -1 }); err != nil {
			return nil, err
		}
	}

	// Ship the delta blocks. From here the session owns deposits at
	// other sites; every abandoning exit must cancel the session task,
	// which invalidate (in the callers' error path) does.
	if err := cl.parallelCtx(ctx, func(ctx context.Context, i int) error {
		rep := replies[i]
		if rep == nil {
			return nil
		}
		for l, batch := range rep.Ins {
			if err := ctx.Err(); err != nil {
				return err
			}
			if opt.NoPackedShip {
				batch.DropPacked()
			}
			if err := cl.shipDelta(ctx, fs, m, i, st.sticky[l], BlockTask(st.session, l)+"/ins", batch); err != nil {
				return err
			}
		}
		for l, batch := range rep.Del {
			if err := ctx.Err(); err != nil {
				return err
			}
			if opt.NoPackedShip {
				batch.DropPacked()
			}
			if err := cl.shipDelta(ctx, fs, m, i, st.sticky[l], BlockTask(st.session, l)+"/del", batch); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Fold at the coordinators.
	bySite := blocksBySite(st.sticky, n)
	parts := make([][]*relation.Relation, len(detectCFDs))
	for ci := range parts {
		parts[ci] = make([]*relation.Relation, n)
	}
	foldGen := make([]int64, n)
	if err := cl.parallelCtx(ctx, func(ctx context.Context, j int) error {
		if len(bySite[j]) == 0 {
			return nil
		}
		// Folding consumes deposits and mutates the session's retained
		// states: not idempotent, so only provably-unexecuted failures
		// retry in place; the rest reseed via the round-level retry.
		return cl.callSite(ctx, fs, j, false, func(ctx context.Context) error {
			rep, err := cl.sites[j].FoldDetect(ctx, FoldArgs{
				Session:        st.session,
				Spec:           spec,
				Blocks:         bySite[j],
				CFDs:           detectCFDs,
				RestrictSingle: restrictSingle,
				Seed:           seeding,
				FromGen:        st.foldedGen[j],
			})
			if err != nil {
				return err
			}
			for ci := range detectCFDs {
				parts[ci][j] = rep.Patterns[ci]
			}
			foldGen[j] = rep.ToGen
			return nil
		})
	}); err != nil {
		return nil, err
	}

	// Commit watermarks only on full success; a partial round was
	// invalidated by the caller and reseeds.
	for i := 0; i < n; i++ {
		if replies[i] != nil {
			st.foldedGen[i] = replies[i].ToGen
		}
		if len(bySite[i]) > 0 {
			st.foldedGen[i] = foldGen[i]
		}
	}
	st.seeded = true
	return parts, nil
}

// DetectIncremental runs the compiled single-CFD plan against the
// cluster's current data, serving from retained delta state: only
// tuples that changed since the previous call (per the sites' delta
// logs) are σ-routed and shipped, and the sticky coordinators fold
// them into retained group states. The reported Patterns, Vio,
// ShippedTuples, CheckSizes, and ModeledTime are byte-identical to a
// fresh sp.Detect on the same data (property-tested); what actually
// moved is reported in DeltaShippedTuples/DeltaShippedBytes. The first
// call — and any call after an error, a site restart, or a
// delete-heavy history — transparently reseeds with one full shipment.
//
// Calls serialize on the plan's incremental session; mutation of the
// fragments (ApplyDelta) must not overlap a call, the usual
// single-writer rule.
func (sp *SinglePlan) DetectIncremental(ctx context.Context) (*SingleResult, error) {
	sp.incMu.Lock()
	defer sp.incMu.Unlock()
	return sp.detectIncrementalLocked(ctx)
}

func (sp *SinglePlan) detectIncrementalLocked(ctx context.Context) (*SingleResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opt := sp.opt
	cl := sp.cl
	start := time.Now()
	m := dist.NewMetrics(cl.N())
	// The incremental path retries transient failures (per call, then
	// per round via reseed) but never excludes sites: a sticky
	// coordinator's retained state is the whole point, so FailDegrade
	// behaves like FailRetry here.
	fs := newFaultState(cl.N(), opt)
	res := &SingleResult{
		CFD:           sp.c,
		Algorithm:     sp.algo,
		Metrics:       m,
		Spec:          sp.spec,
		MinedPatterns: sp.mined,
		Incremental:   true,
	}

	fragSizes, err := cl.fragmentSizes()
	if err != nil {
		return nil, err
	}
	constParts, err := detectConstantsEverywhere(ctx, cl, fs, sp.c)
	if err != nil {
		return nil, err
	}
	if sp.view == nil {
		res.Patterns = mergeDistinct(sp.patternSchema, constParts)
		res.LocalOnly = true
		fin, err := finishSingle(cl, res, opt, fragSizes, start)
		if err != nil {
			return nil, err
		}
		sp.finishFailure(fin, fs)
		return fin, nil
	}
	for _, cb := range sp.control {
		cl.broadcastControl(m, cb.from, cb.bytes)
	}
	if sp.inc == nil {
		sp.inc = newUnitInc(sp.spec.K(), cl.N())
	}
	out, err := runIncrementalPipeline(ctx, cl, fs, sp.spec, []*cfd.CFD{sp.view}, true, sp.algo, opt, m, fragSizes, sp.inc)
	if err != nil {
		return nil, err
	}
	res.Coordinators = out.coords
	res.LocalOnly = m.TotalTuples() == 0
	res.Patterns = mergeDistinct(sp.patternSchema, append(constParts, out.parts[0]...))
	res.DeltaShippedTuples = m.DeltaTuples()
	res.DeltaShippedBytes = m.DeltaBytes()
	fin, err := finishSingle(cl, res, opt, fragSizes, start)
	if err != nil {
		return nil, err
	}
	sp.finishFailure(fin, fs)
	return fin, nil
}

// DetectDelta applies the given per-site deltas and runs one
// incremental round: the ΔD-in, changes-out serving shape. The apply
// happens under the plan's incremental lock, so concurrent
// DetectDelta/DetectIncremental calls on this plan serialize instead
// of racing mutation against a running round. (Mutating the cluster
// from elsewhere while any detection runs remains unsupported, as for
// all mutation.)
func (sp *SinglePlan) DetectDelta(ctx context.Context, deltas map[int]relation.Delta) (*SingleResult, error) {
	sp.incMu.Lock()
	defer sp.incMu.Unlock()
	if err := applyDeltas(ctx, sp.cl, deltas); err != nil {
		return nil, err
	}
	return sp.detectIncrementalLocked(ctx)
}

// detectIncremental mirrors clusterPlan.detect for an incremental
// round; the accounting formulas are identical, reading the
// fresh-equivalent channel of the round's metrics.
func (cp *clusterPlan) detectIncremental(ctx context.Context) ([]*relation.Relation, float64, *dist.Metrics, error) {
	cl := cp.cl
	m := dist.NewMetrics(cl.N())
	fs := newFaultState(cl.N(), cp.opt) // no exclusions on this path; see SinglePlan
	fragSizes, err := cl.fragmentSizes()
	if err != nil {
		return nil, 0, nil, err
	}
	constParts := make([][]*relation.Relation, len(cp.group))
	for ci, c := range cp.group {
		parts, err := detectConstantsEverywhere(ctx, cl, fs, c)
		if err != nil {
			return nil, 0, nil, err
		}
		constParts[ci] = parts
	}
	out := make([]*relation.Relation, len(cp.group))
	for ci := range cp.group {
		out[ci] = mergeDistinct(cp.schemas[ci], constParts[ci])
	}
	modeled := 0.0
	if cp.spec != nil {
		if cp.inc == nil {
			cp.inc = newUnitInc(cp.spec.K(), cl.N())
		}
		pipe, err := runIncrementalPipeline(ctx, cl, fs, cp.spec, cp.views, false, cp.algo, cp.opt, m, fragSizes, cp.inc)
		if err != nil {
			return nil, 0, nil, err
		}
		for vi, ci := range cp.viewIdx {
			out[ci] = mergeDistinct(out[ci].Schema(), append([]*relation.Relation{out[ci]}, pipe.parts[vi]...))
		}
		checkSizes := make([]int, cl.N())
		for i := range checkSizes {
			checkSizes[i] = fragSizes[i] + int(m.ReceivedBy(i))
		}
		modeled = cp.opt.Cost.ResponseTime(m, checkSizes)
	} else {
		modeled = cp.opt.Cost.ResponseTime(m, fragSizes)
	}
	for ci, c := range cp.group {
		if err := out[ci].SortBy(c.X...); err != nil {
			return nil, 0, nil, err
		}
	}
	fs.stamp(m)
	return out, modeled, m, nil
}

func (u *planUnit) detectIncremental(ctx context.Context) ([]*relation.Relation, float64, *dist.Metrics, error) {
	if u.single != nil {
		one, err := u.single.DetectIncremental(ctx)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("core: cfd %s: %w", u.single.c.Name, err)
		}
		return []*relation.Relation{one.Patterns}, one.ModeledTime, one.Metrics, nil
	}
	return u.multi.detectIncremental(ctx)
}

// DetectIncremental runs the compiled set plan from retained delta
// state, unit by unit in deterministic cluster order (incremental
// rounds mutate per-unit session state, so Options.Workers does not
// apply). The violation sets, ShippedTuples, and ModeledTime equal a
// fresh p.Detect on the same data; DeltaShippedTuples/Bytes report the
// actual wire traffic.
func (p *Plan) DetectIncremental(ctx context.Context) (*SetResult, error) {
	p.incMu.Lock()
	defer p.incMu.Unlock()
	return p.detectIncrementalLocked(ctx)
}

func (p *Plan) detectIncrementalLocked(ctx context.Context) (*SetResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	total := dist.NewMetrics(p.cl.N())
	res := &SetResult{
		CFDs:        p.cfds,
		Metrics:     total,
		PerCFD:      make([]*relation.Relation, len(p.cfds)),
		Clusters:    p.clusters,
		Incremental: true,
		Coverage:    1,
	}
	unitModeled := make([]float64, len(p.units))
	unitMetrics := make([]*dist.Metrics, len(p.units))
	for gi, u := range p.units {
		pats, modeled, m, err := u.detectIncremental(ctx)
		if err != nil {
			return nil, err
		}
		total.Merge(m)
		unitModeled[gi], unitMetrics[gi] = modeled, m
		for i, idx := range p.clusters[gi] {
			res.PerCFD[idx] = pats[i]
		}
	}
	p.fillAliases(res, unitMetrics)
	res.ModeledTime = p.modeledSum(unitModeled)
	res.ShippedTuples = total.TotalTuples()
	res.DeltaShippedTuples = total.DeltaTuples()
	res.DeltaShippedBytes = total.DeltaBytes()
	// Units stamp their own fault states into their metrics; Merge
	// carried them here, so the set totals fall out of the sum.
	res.Retries = total.TotalRetries()
	res.Faults = total.TotalFaults()
	res.WallTime = time.Since(start)
	return res, nil
}

// DetectDelta applies per-site deltas and runs one incremental round.
// The apply happens under the plan's incremental lock; see
// SinglePlan.DetectDelta for the serialization contract.
func (p *Plan) DetectDelta(ctx context.Context, deltas map[int]relation.Delta) (*SetResult, error) {
	p.incMu.Lock()
	defer p.incMu.Unlock()
	if err := applyDeltas(ctx, p.cl, deltas); err != nil {
		return nil, err
	}
	return p.detectIncrementalLocked(ctx)
}

// applyDeltas applies per-site deltas in ascending site order (a
// deterministic order so generation counters replay identically).
func applyDeltas(ctx context.Context, cl *Cluster, deltas map[int]relation.Delta) error {
	sites := make([]int, 0, len(deltas))
	for i := range deltas {
		sites = append(sites, i)
	}
	sort.Ints(sites)
	for _, i := range sites {
		if _, err := cl.ApplyDelta(ctx, i, deltas[i]); err != nil {
			return fmt.Errorf("core: applying delta at site %d: %w", i, err)
		}
	}
	return nil
}
