package core

import (
	"context"
	"testing"

	"distcfd/internal/cfd"
	"distcfd/internal/relation"
)

func testSite(t *testing.T) *Site {
	t.Helper()
	s := relation.MustSchema("T", []string{"id", "a", "b", "c"}, "id")
	frag := relation.MustFromRows(s,
		[]string{"1", "x", "p", "m"},
		[]string{"2", "x", "q", "m"},
		[]string{"3", "y", "p", "n"},
		[]string{"4", "z", "p", "n"},
	)
	return NewSite(0, frag, relation.True())
}

func testSpec(t *testing.T) *BlockSpec {
	t.Helper()
	spec, err := NewBlockSpec([]string{"a"}, [][]string{{"x"}, {"y"}})
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestSiteBasics(t *testing.T) {
	s := testSite(t)
	if s.ID() != 0 {
		t.Error("ID")
	}
	if n, _ := s.NumTuples(); n != 4 {
		t.Errorf("NumTuples = %d", n)
	}
	p, _ := s.Predicate()
	if !p.IsTrue() {
		t.Errorf("Predicate = %v", p)
	}
}

func TestSiteSigmaStatsAndExtract(t *testing.T) {
	s := testSite(t)
	spec := testSpec(t)
	stats, err := s.SigmaStats(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0] != 2 || stats[1] != 1 {
		t.Errorf("stats = %v", stats)
	}
	blk, err := s.ExtractBlock(context.Background(), spec, 0, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if blk.Len() != 2 || blk.Schema().Arity() != 2 {
		t.Errorf("block = %v", blk)
	}
	match, err := s.ExtractMatching(context.Background(), spec, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if match.Len() != 3 { // x,x,y match; z does not
		t.Errorf("matching = %d rows", match.Len())
	}
	if _, err := s.ExtractBlock(context.Background(), spec, 9, []string{"a"}); err == nil {
		t.Error("out-of-range block accepted")
	}
	if _, err := s.ExtractBlock(context.Background(), spec, 0, []string{"zz"}); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestSiteExtractBlocksBatch(t *testing.T) {
	s := testSite(t)
	spec := testSpec(t)
	batches, err := s.ExtractBlocksBatch(context.Background(), spec, []string{"a", "b"}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if batches[0].Len() != 2 || batches[1].Len() != 1 {
		t.Errorf("batches = %d, %d", batches[0].Len(), batches[1].Len())
	}
	single, err := s.ExtractBlock(context.Background(), spec, 0, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !batches[0].SameTuples(single) {
		t.Error("batch extraction differs from single extraction")
	}
	if _, err := s.ExtractBlocksBatch(context.Background(), spec, []string{"a"}, []int{5}); err == nil {
		t.Error("out-of-range block accepted")
	}
}

func TestSiteDepositAndDetectTask(t *testing.T) {
	s := testSite(t)
	spec := testSpec(t)
	c := cfd.MustParse(`t: [a] -> [b] : (x || _), (y || _)`)

	// Deposit a conflicting tuple for block 0 (a=x with third b-value).
	shipSchema := relation.MustSchema("T_ship", []string{"a", "b"})
	dep := relation.MustFromRows(shipSchema, []string{"x", "r"})
	task := "test-task"
	if err := s.Deposit(context.Background(), BlockTask(task, 0), dep, ""); err != nil {
		t.Fatal(err)
	}
	pats, err := s.DetectAssignedSingle(context.Background(), task, spec, []int{0, 1}, c)
	if err != nil {
		t.Fatal(err)
	}
	// a=x group has b ∈ {p,q,r} → violation; a=y group single tuple.
	wantPatterns(t, "detect-assigned", pats, "x")

	// Deposits are consumed: a second detection sees only local data,
	// where a=x is still violating (p vs q) — but after consuming, the
	// deposit is gone, so r no longer contributes.
	pats2, err := s.DetectAssignedSingle(context.Background(), task, spec, []int{0, 1}, c)
	if err != nil {
		t.Fatal(err)
	}
	wantPatterns(t, "detect-assigned-2", pats2, "x")
}

func TestSiteDetectTaskModes(t *testing.T) {
	s := testSite(t)
	spec := testSpec(t)
	c := cfd.MustParse(`t: [a] -> [b] : (x || _), (y || _)`)

	// BlockAllMatching (CTR coordinator mode): local matching + nothing.
	pats, err := s.DetectTask(context.Background(), "t1", LocalInput{Spec: spec, Block: BlockAllMatching}, []*cfd.CFD{c})
	if err != nil {
		t.Fatal(err)
	}
	wantPatterns(t, "all-matching", pats[0], "x")

	// BlockNone with deposits only.
	shipSchema := relation.MustSchema("T_ship", []string{"a", "b"})
	dep := relation.MustFromRows(shipSchema,
		[]string{"y", "1"}, []string{"y", "2"})
	if err := s.Deposit(context.Background(), "t2", dep, ""); err != nil {
		t.Fatal(err)
	}
	pats, err = s.DetectTask(context.Background(), "t2", LocalInput{Block: BlockNone}, []*cfd.CFD{c})
	if err != nil {
		t.Fatal(err)
	}
	wantPatterns(t, "deposit-only", pats[0], "y")

	// Empty task → empty result.
	pats, err = s.DetectTask(context.Background(), "t3", LocalInput{Block: BlockNone}, []*cfd.CFD{c})
	if err != nil {
		t.Fatal(err)
	}
	if pats[0].Len() != 0 {
		t.Errorf("empty task returned %v", pats[0])
	}

	// Errors.
	if _, err := s.DetectTask(context.Background(), "t4", LocalInput{Block: BlockAllMatching}, []*cfd.CFD{c}); err == nil {
		t.Error("BlockAllMatching without spec accepted")
	}
	if _, err := s.DetectTask(context.Background(), "t5", LocalInput{Spec: spec, Block: 0}, nil); err == nil {
		t.Error("no CFDs accepted")
	}
}

func TestSiteDetectConstantsLocal(t *testing.T) {
	s := testSite(t)
	// Constant CFD: a=x ⇒ c=ZZZ — both x tuples violate (c=m).
	c := cfd.MustParse(`k: [a] -> [c] : (x || ZZZ)`)
	pats, err := s.DetectConstantsLocal(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	wantPatterns(t, "constants", pats, "x")
	// Variable CFD has no constant units → empty.
	v := cfd.MustParse(`v: [a] -> [c]`)
	pats, err = s.DetectConstantsLocal(context.Background(), v)
	if err != nil {
		t.Fatal(err)
	}
	if pats.Len() != 0 {
		t.Errorf("variable CFD constants = %v", pats)
	}
}

func TestSiteMineFrequent(t *testing.T) {
	s := testSite(t)
	ps, err := s.MineFrequent(context.Background(), []string{"a"}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// a=x appears twice out of 4 → support 0.5 → kept.
	if len(ps) != 1 || ps[0].Vals[0] != "x" || ps[0].RelSupport != 0.5 {
		t.Errorf("mined = %v", ps)
	}
	if _, err := s.MineFrequent(context.Background(), []string{"a"}, 0); err == nil {
		t.Error("theta=0 accepted")
	}
}

func TestBlockTask(t *testing.T) {
	if BlockTask("run", 3) != "run/b3" {
		t.Errorf("BlockTask = %q", BlockTask("run", 3))
	}
	if BlockTask("run", 3) == BlockTask("run", 4) {
		t.Error("distinct blocks must have distinct keys")
	}
}

func TestClusterConstruction(t *testing.T) {
	cl := fig1bCluster(t)
	if cl.N() != 3 {
		t.Errorf("N = %d", cl.N())
	}
	if cl.Schema().Name() != "EMP" {
		t.Errorf("schema = %v", cl.Schema())
	}
	if cl.Site(1).ID() != 1 {
		t.Error("site ID mismatch")
	}
	// Site ID order enforced.
	s := relation.MustSchema("T", []string{"a"})
	frag := relation.MustFromRows(s, []string{"1"})
	bad := []SiteAPI{NewSite(1, frag, relation.True())}
	if _, err := NewCluster(s, bad); err == nil {
		t.Error("misnumbered site accepted")
	}
	if _, err := NewCluster(s, nil); err == nil {
		t.Error("empty cluster accepted")
	}
}
