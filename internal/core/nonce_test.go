package core

import (
	"context"
	"testing"

	"distcfd/internal/relation"
	"distcfd/internal/workload"
)

// TestDepositNonceDedup pins the at-most-once contract of Deposit: a
// retransmitted batch (same nonce — the lost-response case a retry
// produces) is acknowledged without buffering again, a fresh nonce
// buffers, and the empty nonce disables dedup entirely.
func TestDepositNonceDedup(t *testing.T) {
	ctx := context.Background()
	s := NewSite(0, workload.EMPData(), relation.True())
	batch := workload.EMPData()
	buffered := func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.deposits["run/b0"])
	}
	for i := 0; i < 3; i++ { // original + two retransmits
		if err := s.Deposit(ctx, "run/b0", batch, "n1"); err != nil {
			t.Fatal(err)
		}
	}
	if n := buffered(); n != 1 {
		t.Fatalf("retransmitted deposit buffered %d batches, want 1", n)
	}
	if err := s.Deposit(ctx, "run/b0", batch, "n2"); err != nil {
		t.Fatal(err)
	}
	if n := buffered(); n != 2 {
		t.Fatalf("fresh nonce buffered %d batches, want 2", n)
	}
	for i := 0; i < 2; i++ { // empty nonce: every deposit lands
		if err := s.Deposit(ctx, "run/b0", batch, ""); err != nil {
			t.Fatal(err)
		}
	}
	if n := buffered(); n != 4 {
		t.Fatalf("empty-nonce deposits buffered %d batches, want 4", n)
	}
}

// TestDepositNonceEviction: the nonce memo is bounded FIFO — after
// nonceCap distinct nonces the oldest is forgotten and a very late
// retransmit would buffer again. The bound is the memory contract; the
// dedup window only has to outlive the retry window, which it does by
// orders of magnitude.
func TestDepositNonceEviction(t *testing.T) {
	ctx := context.Background()
	s := NewSite(0, workload.EMPData(), relation.True())
	batch := workload.EMPData()
	if err := s.Deposit(ctx, "t/b0", batch, "first"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nonceCap; i++ {
		if err := s.Deposit(ctx, "t/b1", batch, "fill-"+itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	_, remembered := s.nonces["first"]
	memo := len(s.nonces)
	s.mu.Unlock()
	if remembered {
		t.Error("oldest nonce should have been evicted")
	}
	if memo > nonceCap {
		t.Errorf("nonce memo grew to %d, cap is %d", memo, nonceCap)
	}
}

// TestApplyDeltaNonceDedup pins the at-most-once contract of
// ApplyDelta: a retried apply whose first attempt landed returns the
// remembered DeltaInfo instead of applying the delta twice.
func TestApplyDeltaNonceDedup(t *testing.T) {
	ctx := context.Background()
	data := workload.EMPData()
	s := NewSite(0, data, relation.True())
	before, err := s.NumTuples()
	if err != nil {
		t.Fatal(err)
	}
	ins := append(relation.Tuple(nil), data.Tuple(0)...)
	d := relation.Delta{Inserts: []relation.Tuple{ins}}
	info1, err := s.ApplyDelta(ctx, d, "a1")
	if err != nil {
		t.Fatal(err)
	}
	info2, err := s.ApplyDelta(ctx, d, "a1") // retransmit
	if err != nil {
		t.Fatal(err)
	}
	if info1 != info2 {
		t.Errorf("retried apply returned %+v, want the remembered %+v", info2, info1)
	}
	if n, _ := s.NumTuples(); n != before+1 {
		t.Errorf("fragment has %d tuples, want %d — the retransmit must not apply twice", n, before+1)
	}
	info3, err := s.ApplyDelta(ctx, d, "a2") // a genuinely new delta
	if err != nil {
		t.Fatal(err)
	}
	if info3.Gen != info1.Gen+1 || info3.NumTuples != before+2 {
		t.Errorf("fresh nonce: got %+v, want gen %d with %d tuples", info3, info1.Gen+1, before+2)
	}
}
