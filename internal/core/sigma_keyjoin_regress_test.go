package core

import "testing"

// σ-routing regression for the separator-join key bugs: block specs
// and probe keys over values containing the old 0x1f separator.

func TestBlockSpecSeparatorPatterns(t *testing.T) {
	// Both patterns joined to "x\x1fy\x1fz" under the old dedup key,
	// so NewBlockSpec collapsed them into one block.
	spec, err := NewBlockSpec([]string{"a", "b"}, [][]string{
		{"x\x1fy", "z"},
		{"x", "y\x1fz"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Patterns) != 2 {
		t.Fatalf("NewBlockSpec deduped distinct patterns: got %d, want 2", len(spec.Patterns))
	}

	// Assign must route each tuple to its own pattern's block — the
	// old joined probe key matched both tuples to the same entry.
	l0 := spec.Assign([]string{"x\x1fy", "z"})
	l1 := spec.Assign([]string{"x", "y\x1fz"})
	if l0 == -1 || l1 == -1 {
		t.Fatalf("Assign missed its own patterns: %d, %d", l0, l1)
	}
	if l0 == l1 {
		t.Errorf("Assign routed both separator tuples to block %d; want distinct blocks", l0)
	}
	if l := spec.Assign([]string{"x", "z"}); l != -1 {
		t.Errorf("Assign matched unrelated tuple to block %d; want -1", l)
	}
}

func TestBlockSpecOrderedSeparatorDedup(t *testing.T) {
	spec, err := NewBlockSpecOrdered([]string{"a", "b"}, [][]string{
		{"b\x1f", ""},
		{"b", "\x1f"},
		{"b\x1f", ""}, // true duplicate of the first
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Patterns) != 2 {
		t.Errorf("ordered dedup kept %d patterns, want 2", len(spec.Patterns))
	}
}
