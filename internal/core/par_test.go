package core

import (
	"context"
	"math/rand"
	"testing"

	"distcfd/internal/cfd"
	"distcfd/internal/partition"
	"distcfd/internal/relation"
)

// identicalRelations reports whether two pattern relations are
// byte-identical: same tuples in the same order.
func identicalRelations(a, b *relation.Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i, t := range a.Tuples() {
		if !t.Equal(b.Tuple(i)) {
			return false
		}
	}
	return true
}

// TestParDetectIdenticalToSeqAndClust: on random relations, random CFD
// sets, and random partitionings, ParDetect's violation sets are
// byte-identical (tuples and order) to SeqDetect's and ClustDetect's,
// and its shipment/time accounting equals ClustDetect's.
func TestParDetectIdenticalToSeqAndClust(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 12; trial++ {
		d := randomRelation(rng, 80)
		var cfds []*cfd.CFD
		for i := 0; i < 2+rng.Intn(4); i++ {
			c := randomTestCFD(rng)
			c.Name = c.Name + itoa(i)
			cfds = append(cfds, c)
		}
		h, err := partition.Uniform(d, 2+rng.Intn(3), int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		cl, err := FromHorizontal(h)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			seq, err := SeqDetect(cl, cfds, PatDetectRT, Options{})
			if err != nil {
				t.Fatal(err)
			}
			clu, err := ClustDetect(cl, cfds, PatDetectRT, Options{})
			if err != nil {
				t.Fatal(err)
			}
			par, err := ParDetect(cl, cfds, PatDetectRT, Options{Workers: workers})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			for ci := range cfds {
				if !identicalRelations(par.PerCFD[ci], seq.PerCFD[ci]) {
					t.Fatalf("trial %d workers %d cfd %d: ParDetect != SeqDetect\n par %v\n seq %v",
						trial, workers, ci, par.PerCFD[ci], seq.PerCFD[ci])
				}
				if !identicalRelations(par.PerCFD[ci], clu.PerCFD[ci]) {
					t.Fatalf("trial %d workers %d cfd %d: ParDetect != ClustDetect",
						trial, workers, ci)
				}
			}
			if par.ShippedTuples != clu.ShippedTuples {
				t.Errorf("trial %d workers %d: shipment %d != ClustDetect's %d",
					trial, workers, par.ShippedTuples, clu.ShippedTuples)
			}
			if par.ModeledTime != clu.ModeledTime {
				t.Errorf("trial %d workers %d: modeled %v != ClustDetect's %v",
					trial, workers, par.ModeledTime, clu.ModeledTime)
			}
			if len(par.Clusters) != len(clu.Clusters) {
				t.Errorf("trial %d: cluster structure differs", trial)
			}
		}
	}
}

func TestParDetectBookkeeping(t *testing.T) {
	cl := fig1bCluster(t)
	cfds := []*cfd.CFD{phi1, phi2, phi3}
	res, err := ParDetect(cl, cfds, PatDetectS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ModeledTime <= 0 || res.WallTime <= 0 {
		t.Error("times should be positive")
	}
	if res.ShippedTuples != res.Metrics.TotalTuples() {
		t.Error("shipped tuples mismatch with metrics")
	}
	wantPatterns(t, "par phi1", res.PerCFD[0], "44\x1fEH4 8LE", "31\x1f1012 WR")
	wantPatterns(t, "par phi3", res.PerCFD[2], "44\x1f131", "01\x1f908")
	if res.PerCFD[1].Len() != 0 {
		t.Error("phi2 should have no violations")
	}
}

func TestParDetectEmptyInput(t *testing.T) {
	cl := fig1bCluster(t)
	if _, err := ParDetect(cl, nil, PatDetectS, Options{}); err == nil {
		t.Error("expected error for empty CFD set")
	}
}

// TestParDetectManyIndependentCFDs exercises the worker pool with more
// clusters than workers: ten disjoint-LHS CFDs over one cluster.
func TestParDetectManyIndependentCFDs(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	d := randomRelation(rng, 120)
	h, err := partition.Uniform(d, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := FromHorizontal(h)
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint single-attribute LHSs: a→b, b→c, c→d, d→a cycle variants
	// never share containment, so every CFD is its own cluster.
	attrs := []string{"a", "b", "c", "d"}
	var cfds []*cfd.CFD
	for i := 0; i < 8; i++ {
		x := attrs[i%4]
		y := attrs[(i+1+i/4)%4]
		if x == y {
			y = attrs[(i+2)%4]
		}
		cfds = append(cfds, cfd.MustNew("fd"+itoa(i), []string{x}, []string{y}, []cfd.PatternTuple{
			{LHS: []string{cfd.Wildcard}, RHS: []string{cfd.Wildcard}},
		}))
	}
	seq, err := SeqDetect(cl, cfds, PatDetectS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParDetect(cl, cfds, PatDetectS, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for ci := range cfds {
		if !identicalRelations(par.PerCFD[ci], seq.PerCFD[ci]) {
			t.Fatalf("cfd %d: parallel result differs from sequential", ci)
		}
	}
}

// TestIntraUnitParallelIdentical pins the worker split's second level:
// on a single merged cluster (every CFD's LHS related by containment,
// so cluster-level parallelism has exactly one unit to work with) over
// fragments large enough to row-shard, a compiled Detect with a big
// worker budget — which all drops into intra-unit sharding — is
// byte-identical to the strictly serial run at several budgets.
func TestIntraUnitParallelIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d := relation.New(relation.MustSchema("BIG", []string{"a", "b", "c", "d"}))
	for i := 0; i < 12_000; i++ {
		d.MustAppend(relation.Tuple{
			"v" + itoa(rng.Intn(40)), "w" + itoa(rng.Intn(7)),
			"x" + itoa(rng.Intn(5)), "y" + itoa(rng.Intn(6)),
		})
	}
	cfds := []*cfd.CFD{
		cfd.MustParse(`b1: [a] -> [c]`),
		cfd.MustParse(`b2: [a, b] -> [d]`),
		cfd.MustParse(`b3: [a, b, c] -> [d] : (_, w1, _ || _)`),
	}
	h, err := partition.Uniform(d, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := FromHorizontal(h)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := ClustDetect(cl, cfds, PatDetectRT, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Clusters) != 1 {
		t.Fatalf("want one merged cluster, got %v", serial.Clusters)
	}
	for _, workers := range []int{2, 4, 8} {
		p, err := CompileSet(context.Background(), cl, cfds, PatDetectRT, Options{Workers: workers}, true)
		if err != nil {
			t.Fatal(err)
		}
		par, err := p.Detect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for ci := range cfds {
			if !identicalRelations(par.PerCFD[ci], serial.PerCFD[ci]) {
				t.Fatalf("workers %d cfd %d: intra-parallel != serial", workers, ci)
			}
		}
		if par.ShippedTuples != serial.ShippedTuples || par.ModeledTime != serial.ModeledTime {
			t.Fatalf("workers %d: accounting diverged (%d/%v vs %d/%v)", workers,
				par.ShippedTuples, par.ModeledTime, serial.ShippedTuples, serial.ModeledTime)
		}
	}
}
