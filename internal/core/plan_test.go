package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"distcfd/internal/cfd"
	"distcfd/internal/partition"
)

// TestPlanDetectManyIdenticalToOneShot is the plan-reuse property: on
// random relations, CFD sets, and partitionings, a plan compiled once
// and detected many times — sequentially and concurrently — returns
// violation sets byte-identical (tuples and order) to fresh one-shot
// SeqDetect/ClustDetect runs, with equal shipment totals and modeled
// time on every call. Run under -race this also pins that a Plan and
// the sites' serving caches tolerate concurrent Detect traffic.
func TestPlanDetectManyIdenticalToOneShot(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		d := randomRelation(rng, 80)
		var cfds []*cfd.CFD
		for i := 0; i < 2+rng.Intn(4); i++ {
			c := randomTestCFD(rng)
			c.Name = c.Name + itoa(i)
			cfds = append(cfds, c)
		}
		h, err := partition.Uniform(d, 2+rng.Intn(3), int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		cl, err := FromHorizontal(h)
		if err != nil {
			t.Fatal(err)
		}
		for _, clustered := range []bool{false, true} {
			oneShot := func() *SetResult {
				t.Helper()
				var res *SetResult
				var err error
				if clustered {
					res, err = ClustDetect(cl, cfds, PatDetectRT, Options{})
				} else {
					res, err = SeqDetect(cl, cfds, PatDetectRT, Options{})
				}
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			want := oneShot()

			p, err := CompileSet(ctx, cl, cfds, PatDetectRT, Options{Workers: 3}, clustered)
			if err != nil {
				t.Fatal(err)
			}
			check := func(label string, got *SetResult) {
				t.Helper()
				for ci := range cfds {
					if !identicalRelations(got.PerCFD[ci], want.PerCFD[ci]) {
						t.Fatalf("trial %d clustered=%v %s cfd %d: plan result differs from one-shot\n plan %v\n shot %v",
							trial, clustered, label, ci, got.PerCFD[ci], want.PerCFD[ci])
					}
				}
				if got.ShippedTuples != want.ShippedTuples {
					t.Errorf("trial %d clustered=%v %s: shipment %d != one-shot %d",
						trial, clustered, label, got.ShippedTuples, want.ShippedTuples)
				}
				if got.ModeledTime != want.ModeledTime {
					t.Errorf("trial %d clustered=%v %s: modeled %v != one-shot %v",
						trial, clustered, label, got.ModeledTime, want.ModeledTime)
				}
				if len(got.Clusters) != len(want.Clusters) {
					t.Errorf("trial %d clustered=%v %s: cluster structure differs", trial, clustered, label)
				}
			}

			// Sequential reuse: the same plan, three runs in a row.
			for k := 0; k < 3; k++ {
				got, err := p.Detect(ctx)
				if err != nil {
					t.Fatal(err)
				}
				check("seq", got)
			}

			// Concurrent reuse: one plan serving parallel callers, while
			// one-shot runs hit the same sites' caches from the side.
			var wg sync.WaitGroup
			results := make([]*SetResult, 4)
			errs := make([]error, 4)
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					results[g], errs[g] = p.Detect(ctx)
				}(g)
			}
			interleaved := oneShot()
			wg.Wait()
			for g := 0; g < 4; g++ {
				if errs[g] != nil {
					t.Fatal(errs[g])
				}
				check("conc", results[g])
			}
			check("interleaved-one-shot", interleaved)
		}
	}
}

// TestPlanSinglePlanFor pins the DetectOne fast path: singleton units
// of a set plan are reachable as SinglePlans, members of merged
// clusters are not.
func TestPlanSinglePlanFor(t *testing.T) {
	cl := fig1bCluster(t)
	// phi1 ([CC, zip]) and phi3 ([CC, AC]) are separate; adding a [CC]
	// rule merges with both under containment — splitForNonEmptyW keeps
	// them together via the shared W = {CC}.
	cfds := []*cfd.CFD{phi1, phi2, phi3}
	p, err := CompileSet(context.Background(), cl, cfds, PatDetectS, Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfds {
		sp := p.SinglePlanFor(i)
		if sp == nil {
			t.Fatalf("unclustered plan: cfd %d has no single plan", i)
		}
		one, err := sp.Detect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want, err := DetectSingle(cl, cfds[i], PatDetectS, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !identicalRelations(one.Patterns, want.Patterns) {
			t.Errorf("cfd %d: single-plan patterns differ from one-shot", i)
		}
	}
}

// TestPlanMiningCompiledOnce pins that a mined plan reproduces the
// one-shot mined run exactly — including the control traffic replay —
// across repeated detects.
func TestPlanMiningCompiledOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := randomRelation(rng, 200)
	h, err := partition.Uniform(d, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := FromHorizontal(h)
	if err != nil {
		t.Fatal(err)
	}
	fd := cfd.MustNew("mfd", []string{"a", "b"}, []string{"c"}, []cfd.PatternTuple{
		{LHS: []string{cfd.Wildcard, cfd.Wildcard}, RHS: []string{cfd.Wildcard}},
	})
	opt := Options{MineTheta: 0.1}
	want, err := DetectSingle(cl, fd, PatDetectS, opt)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := CompileSingle(context.Background(), cl, fd, PatDetectS, opt)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		got, err := sp.Detect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !identicalRelations(got.Patterns, want.Patterns) {
			t.Fatalf("run %d: mined plan patterns differ from one-shot", k)
		}
		if got.MinedPatterns != want.MinedPatterns {
			t.Errorf("run %d: mined %d patterns, one-shot mined %d", k, got.MinedPatterns, want.MinedPatterns)
		}
		if got.ShippedTuples != want.ShippedTuples || got.ModeledTime != want.ModeledTime {
			t.Errorf("run %d: accounting differs: shipped %d/%d modeled %v/%v",
				k, got.ShippedTuples, want.ShippedTuples, got.ModeledTime, want.ModeledTime)
		}
		gs, ws := got.Metrics.Snapshot(), want.Metrics.Snapshot()
		if gs.ControlBytes != ws.ControlBytes {
			t.Errorf("run %d: control traffic %d != one-shot %d (mining exchange not replayed?)",
				k, gs.ControlBytes, ws.ControlBytes)
		}
	}
}
