package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"distcfd/internal/cfd"
	"distcfd/internal/partition"
	"distcfd/internal/relation"
)

// Shared fixtures: the paper's running example (Fig. 1).

func empSchema() *relation.Schema {
	return relation.MustSchema("EMP",
		[]string{"id", "name", "title", "CC", "AC", "phn", "street", "city", "zip", "salary"},
		"id")
}

func empD0() *relation.Relation {
	return relation.MustFromRows(empSchema(),
		[]string{"1", "Sam", "DMTS", "44", "131", "8765432", "Princess Str.", "EDI", "EH2 4HF", "95k"},
		[]string{"2", "Mike", "MTS", "44", "131", "1234567", "Mayfield", "NYC", "EH4 8LE", "80k"},
		[]string{"3", "Rick", "DMTS", "44", "131", "3456789", "Mayfield", "NYC", "EH4 8LE", "95k"},
		[]string{"4", "Philip", "DMTS", "44", "131", "2909209", "Crichton", "EDI", "EH4 8LE", "95k"},
		[]string{"5", "Adam", "VP", "44", "131", "7478626", "Mayfield", "EDI", "EH4 8LE", "200k"},
		[]string{"6", "Joe", "MTS", "01", "908", "1416282", "Mtn Ave", "NYC", "07974", "110k"},
		[]string{"7", "Bob", "DMTS", "01", "908", "2345678", "Mtn Ave", "MH", "07974", "150k"},
		[]string{"8", "Jef", "DMTS", "31", "20", "8765432", "Muntplein", "AMS", "1012 WR", "90k"},
		[]string{"9", "Steven", "MTS", "31", "20", "1425364", "Spuistraat", "AMS", "1012 WR", "75k"},
		[]string{"10", "Bram", "MTS", "31", "10", "2536475", "Kruisplein", "ROT", "3012 CC", "75k"},
	)
}

var (
	phi1 = cfd.MustParse(`phi1: [CC, zip] -> [street] : (44, _ || _), (31, _ || _)`)
	phi2 = cfd.MustParse(`phi2: [CC, title] -> [salary]`)
	phi3 = cfd.MustParse(`phi3: [CC, AC] -> [city] : (44, 131 || EDI), (01, 908 || MH)`)
)

// fig1bCluster builds the Fig. 1(b) horizontal partition as an
// in-process cluster: fragment order is DH1 (MTS) = S0, DH2 (DMTS) =
// S1, DH3 (VP) = S2 — i.e. the paper's S1, S2, S3 shifted to 0-based.
func fig1bCluster(t *testing.T) *Cluster {
	t.Helper()
	d := empD0()
	preds := []relation.Predicate{
		relation.And(relation.Eq("title", "MTS")),
		relation.And(relation.Eq("title", "DMTS")),
		relation.And(relation.Eq("title", "VP")),
	}
	h, err := partition.ByPredicates(d, preds)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := FromHorizontal(h)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// uniformCluster partitions empD0 uniformly (unknown predicates).
func uniformCluster(t *testing.T, n int, seed int64) *Cluster {
	t.Helper()
	h, err := partition.Uniform(empD0(), n, seed)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := FromHorizontal(h)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// patternsOf renders an X-pattern relation as a set of joined strings.
func patternsOf(r *relation.Relation) map[string]bool {
	// Join is fine here: the fixtures' values are separator-free, and
	// the joined form keeps the wantPatterns literals readable.
	out := map[string]bool{}
	for _, t := range r.Tuples() {
		out[strings.Join(t, "\x1f")] = true
	}
	return out
}

func wantPatterns(t *testing.T, label string, got *relation.Relation, want ...string) {
	t.Helper()
	g := patternsOf(got)
	if len(g) != len(want) {
		t.Errorf("%s: got %d patterns %v, want %d %v", label, len(g), keys(g), len(want), want)
		return
	}
	for _, w := range want {
		if !g[w] {
			t.Errorf("%s: missing pattern %q in %v", label, w, keys(g))
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// randomRelation builds a random instance over 4 small-domain
// attributes plus a unique key.
func randomRelation(rng *rand.Rand, n int) *relation.Relation {
	s := relation.MustSchema("R", []string{"id", "a", "b", "c", "d"}, "id")
	d := relation.New(s)
	for i := 0; i < n; i++ {
		d.MustAppend(relation.Tuple{
			fmt.Sprintf("%d", i),
			fmt.Sprintf("a%d", rng.Intn(3)),
			fmt.Sprintf("b%d", rng.Intn(3)),
			fmt.Sprintf("c%d", rng.Intn(2)),
			fmt.Sprintf("d%d", rng.Intn(4)),
		})
	}
	return d
}

// randomTestCFD builds a random CFD over {a,b,c,d}.
func randomTestCFD(rng *rand.Rand) *cfd.CFD {
	attrs := []string{"a", "b", "c", "d"}
	rng.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
	nx := 1 + rng.Intn(2)
	x := attrs[:nx]
	y := attrs[nx : nx+1]
	k := 1 + rng.Intn(4)
	var pats []cfd.PatternTuple
	for p := 0; p < k; p++ {
		lhs := make([]string, nx)
		for i := range lhs {
			if rng.Intn(2) == 0 {
				lhs[i] = cfd.Wildcard
			} else {
				lhs[i] = fmt.Sprintf("%s%d", x[i], rng.Intn(3))
			}
		}
		rhs := []string{cfd.Wildcard}
		if rng.Intn(4) == 0 {
			rhs[0] = fmt.Sprintf("%s%d", y[0], rng.Intn(3))
		}
		pats = append(pats, cfd.PatternTuple{LHS: lhs, RHS: rhs})
	}
	return cfd.MustNew("rnd", x, y, pats)
}
