package core

import (
	"context"
	"fmt"
	"time"

	"distcfd/internal/cfd"
	"distcfd/internal/relation"
)

// DetectSingle finds Vioπ(φ, D) over the cluster's horizontally
// partitioned relation with the chosen algorithm, implementing
// Section IV: constant units are checked locally at every site
// (Proposition 5); variable patterns are σ-partitioned (Lemma 6),
// statistics are exchanged, per-pattern coordinators are designated by
// the algorithm's policy, each tuple's (X,Y)-projection is shipped at
// most once to its block's coordinator, and coordinators detect their
// blocks in parallel.
//
// DetectSingle is the one-shot form: it compiles the CFD's plan and
// runs it once.
//
// Deprecated: compile once with CompileSingle and serve repeated
// traffic through SinglePlan.Detect (or DetectIncremental under delta
// traffic); this wrapper recompiles the Σ-side work on every call. It
// remains for tests and single-use tooling.
func DetectSingle(cl *Cluster, c *cfd.CFD, algo Algorithm, opt Options) (*SingleResult, error) {
	//distcfd:ctxflow-ok — deprecated context-free wrapper; callers own no context
	return DetectSingleCtx(context.Background(), cl, c, algo, opt)
}

// DetectSingleCtx is DetectSingle under a context: cancellation or
// deadline expiry aborts the run and cancels its task at every site,
// so no deposit outlives it.
func DetectSingleCtx(ctx context.Context, cl *Cluster, c *cfd.CFD, algo Algorithm, opt Options) (*SingleResult, error) {
	sp, err := CompileSingle(ctx, cl, c, algo, opt)
	if err != nil {
		return nil, err
	}
	return sp.Detect(ctx)
}

// detectConstantsEverywhere runs the Proposition 5 local check of c's
// constant units at every site in parallel. Excluded sites contribute
// nothing — their fragment is unreachable.
func detectConstantsEverywhere(ctx context.Context, cl *Cluster, fs *faultState, c *cfd.CFD) ([]*relation.Relation, error) {
	parts := make([]*relation.Relation, cl.N())
	err := cl.parallelCtx(ctx, func(ctx context.Context, i int) error {
		if fs.isExcluded(i) {
			return nil
		}
		return cl.callSite(ctx, fs, i, true, func(ctx context.Context) error {
			pats, err := cl.sites[i].DetectConstantsLocal(ctx, c)
			if err != nil {
				return err
			}
			parts[i] = pats
			return nil
		})
	})
	return parts, err
}

func finishSingle(cl *Cluster, res *SingleResult, opt Options, fragSizes []int, start time.Time) (*SingleResult, error) {
	if res.Patterns == nil {
		res.Patterns = relation.New(mustPatternSchema(cl, res.CFD))
	}
	if err := res.Patterns.SortBy(res.CFD.X...); err != nil {
		return nil, err
	}
	vio, err := padPatterns(cl.schema, res.CFD.X, res.Patterns)
	if err != nil {
		return nil, err
	}
	res.Vio = vio
	res.CheckSizes = make([]int, cl.N())
	for i := range res.CheckSizes {
		res.CheckSizes[i] = fragSizes[i] + int(res.Metrics.ReceivedBy(i))
	}
	res.ShippedTuples = res.Metrics.TotalTuples()
	res.ModeledTime = opt.Cost.ResponseTime(res.Metrics, res.CheckSizes)
	res.WallTime = time.Since(start)
	res.Coverage = 1 // a degraded top-level finisher overwrites this
	return res, nil
}

func mustPatternSchema(cl *Cluster, c *cfd.CFD) *relation.Schema {
	s, err := cl.schema.Project("viopi_"+c.Name, c.X)
	if err != nil {
		panic(fmt.Sprintf("core: pattern schema for validated CFD: %v", err))
	}
	return s
}

func allWildcardLHS(c *cfd.CFD) bool {
	for _, tp := range c.Tp {
		for _, v := range tp.LHS {
			if v != cfd.Wildcard {
				return false
			}
		}
	}
	return true
}

// pruneMatrix evaluates Fi ∧ Fφ satisfiability for every site and
// pattern (Section IV-A). prunedSite[i] is true when site i is pruned
// for every pattern; prunedBlock[i][l] prunes individual pairs.
func pruneMatrix(preds []relation.Predicate, spec *BlockSpec) (prunedSite []bool, prunedBlock [][]bool) {
	n := len(preds)
	prunedSite = make([]bool, n)
	prunedBlock = make([][]bool, n)
	for i := 0; i < n; i++ {
		prunedBlock[i] = make([]bool, spec.K())
		if preds[i].IsTrue() {
			continue // unknown predicate: nothing provable
		}
		all := true
		for l := 0; l < spec.K(); l++ {
			if !preds[i].ConsistentWith(spec.PatternPredicate(l)) {
				prunedBlock[i][l] = true
			} else {
				all = false
			}
		}
		prunedSite[i] = all
	}
	return prunedSite, prunedBlock
}
