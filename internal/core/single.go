package core

import (
	"fmt"
	"time"

	"distcfd/internal/cfd"
	"distcfd/internal/dist"
	"distcfd/internal/mining"
	"distcfd/internal/relation"
)

// DetectSingle finds Vioπ(φ, D) over the cluster's horizontally
// partitioned relation with the chosen algorithm, implementing
// Section IV: constant units are checked locally at every site
// (Proposition 5); variable patterns are σ-partitioned (Lemma 6),
// statistics are exchanged, per-pattern coordinators are designated by
// the algorithm's policy, each tuple's (X,Y)-projection is shipped at
// most once to its block's coordinator, and coordinators detect their
// blocks in parallel.
func DetectSingle(cl *Cluster, c *cfd.CFD, algo Algorithm, opt Options) (*SingleResult, error) {
	opt = opt.withDefaults()
	start := time.Now()
	if err := c.Validate(cl.schema); err != nil {
		return nil, err
	}
	m := dist.NewMetrics(cl.N())
	res := &SingleResult{CFD: c, Algorithm: algo, Metrics: m}

	fragSizes, err := cl.fragmentSizes()
	if err != nil {
		return nil, err
	}

	// Constant units, locally at every site in parallel (Prop. 5).
	constParts, err := detectConstantsEverywhere(cl, c)
	if err != nil {
		return nil, err
	}

	patternSchema, err := cl.schema.Project("viopi_"+c.Name, c.X)
	if err != nil {
		return nil, err
	}

	view, hasVariable := c.VariableView()
	if !hasVariable {
		res.Patterns = mergeDistinct(patternSchema, constParts)
		res.LocalOnly = true
		return finishSingle(cl, res, opt, fragSizes, start)
	}

	// σ spec — possibly instantiating wildcards with mined patterns.
	spec, minedCount, err := buildSpec(cl, view, opt, m)
	if err != nil {
		return nil, err
	}
	res.Spec = spec
	res.MinedPatterns = minedCount

	out, err := runBlockPipeline(cl, spec, []*cfd.CFD{view}, true, algo, opt, m, fragSizes)
	if err != nil {
		return nil, err
	}
	res.Coordinators = out.coords
	res.LocalOnly = m.TotalTuples() == 0
	res.Patterns = mergeDistinct(patternSchema, append(constParts, out.parts[0]...))
	return finishSingle(cl, res, opt, fragSizes, start)
}

// detectConstantsEverywhere runs the Proposition 5 local check of c's
// constant units at every site in parallel.
func detectConstantsEverywhere(cl *Cluster, c *cfd.CFD) ([]*relation.Relation, error) {
	parts := make([]*relation.Relation, cl.N())
	err := cl.parallel(func(i int) error {
		pats, err := cl.sites[i].DetectConstantsLocal(c)
		if err != nil {
			return err
		}
		parts[i] = pats
		return nil
	})
	return parts, err
}

func finishSingle(cl *Cluster, res *SingleResult, opt Options, fragSizes []int, start time.Time) (*SingleResult, error) {
	if res.Patterns == nil {
		res.Patterns = relation.New(mustPatternSchema(cl, res.CFD))
	}
	if err := res.Patterns.SortBy(res.CFD.X...); err != nil {
		return nil, err
	}
	vio, err := padPatterns(cl.schema, res.CFD.X, res.Patterns)
	if err != nil {
		return nil, err
	}
	res.Vio = vio
	res.CheckSizes = make([]int, cl.N())
	for i := range res.CheckSizes {
		res.CheckSizes[i] = fragSizes[i] + int(res.Metrics.ReceivedBy(i))
	}
	res.ShippedTuples = res.Metrics.TotalTuples()
	res.ModeledTime = opt.Cost.ResponseTime(res.Metrics, res.CheckSizes)
	res.WallTime = time.Since(start)
	return res, nil
}

func mustPatternSchema(cl *Cluster, c *cfd.CFD) *relation.Schema {
	s, err := cl.schema.Project("viopi_"+c.Name, c.X)
	if err != nil {
		panic(fmt.Sprintf("core: pattern schema for validated CFD: %v", err))
	}
	return s
}

// buildSpec derives the σ-partitioning for the variable view. When
// mining is enabled and every LHS pattern is all-wildcard (the CFD is
// effectively an FD), the sites mine closed frequent patterns which
// replace the wildcard row, keeping a catch-all wildcard row last.
func buildSpec(cl *Cluster, view *cfd.CFD, opt Options, m *dist.Metrics) (*BlockSpec, int, error) {
	useMining := opt.MineTheta > 0 && cl.N() > 1 && allWildcardLHS(view)
	if !useMining {
		spec, err := SpecFromCFD(view)
		return spec, 0, err
	}
	lists := make([][]mining.Pattern, cl.N())
	if err := cl.parallel(func(i int) error {
		ps, err := cl.sites[i].MineFrequent(view.X, opt.MineTheta)
		if err != nil {
			return err
		}
		lists[i] = ps
		return nil
	}); err != nil {
		return nil, 0, err
	}
	// Pattern exchange: each site broadcasts its mined patterns
	// (control traffic, not tuple shipment).
	for i, ps := range lists {
		var bytes int64
		for _, p := range ps {
			for _, v := range p.Vals {
				bytes += int64(len(v)) + 1
			}
			bytes += 8 // the support share
		}
		if bytes > 0 {
			cl.broadcastControl(m, i, bytes)
		}
	}
	// Concentration-ranked merge (see mining.MergeRanked): among
	// equally general patterns, the one dense at a single site claims
	// its tuples first, keeping that block local.
	merged := mining.MergeRanked(lists...)
	patterns := make([][]string, 0, len(merged)+1)
	for _, p := range merged {
		patterns = append(patterns, p.Vals)
	}
	wild := make([]string, len(view.X))
	for i := range wild {
		wild[i] = cfd.Wildcard
	}
	patterns = append(patterns, wild)
	spec, err := NewBlockSpecOrdered(view.X, patterns)
	if err != nil {
		return nil, 0, err
	}
	return spec, len(merged), nil
}

func allWildcardLHS(c *cfd.CFD) bool {
	for _, tp := range c.Tp {
		for _, v := range tp.LHS {
			if v != cfd.Wildcard {
				return false
			}
		}
	}
	return true
}

// pruneMatrix evaluates Fi ∧ Fφ satisfiability for every site and
// pattern (Section IV-A). prunedSite[i] is true when site i is pruned
// for every pattern; prunedBlock[i][l] prunes individual pairs.
func pruneMatrix(preds []relation.Predicate, spec *BlockSpec) (prunedSite []bool, prunedBlock [][]bool) {
	n := len(preds)
	prunedSite = make([]bool, n)
	prunedBlock = make([][]bool, n)
	for i := 0; i < n; i++ {
		prunedBlock[i] = make([]bool, spec.K())
		if preds[i].IsTrue() {
			continue // unknown predicate: nothing provable
		}
		all := true
		for l := 0; l < spec.K(); l++ {
			if !preds[i].ConsistentWith(spec.PatternPredicate(l)) {
				prunedBlock[i][l] = true
			} else {
				all = false
			}
		}
		prunedSite[i] = all
	}
	return prunedSite, prunedBlock
}
