// Chaos tests: the fault-injection harness (internal/faulty) against
// the retry/degrade layer. They live in the external test package
// because faulty imports core.
package core_test

import (
	"context"
	"encoding/binary"
	"os"
	"sort"
	"strconv"
	"testing"

	"distcfd/internal/cfd"
	"distcfd/internal/colstore"
	"distcfd/internal/core"
	"distcfd/internal/faulty"
	"distcfd/internal/partition"
	"distcfd/internal/relation"
	"distcfd/internal/workload"
)

// fastRetry keeps the chaos runs quick: the backoff window shrinks to
// microseconds while the attempt budgets stay at their defaults.
var fastRetry = core.RetryPolicy{BaseDelay: 50_000, MaxDelay: 500_000} // 50µs, 500µs

// chaosSeed returns the base fault seed for this run: DISTCFD_CHAOS_SEED
// when set (make chaos randomizes and logs it, so any failure replays
// with the same seed), 0 otherwise. It offsets only the *fault-plan*
// seeds — data and partition seeds stay fixed, so the invariants under
// test never move; only which calls fault does.
func chaosSeed(t *testing.T) int64 {
	v := os.Getenv("DISTCFD_CHAOS_SEED")
	if v == "" {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("DISTCFD_CHAOS_SEED=%q: %v", v, err)
	}
	t.Logf("fault seeds offset by DISTCFD_CHAOS_SEED=%d", n)
	return n
}

func chaosCFDs() []*cfd.CFD {
	return []*cfd.CFD{
		workload.CustPatternCFD(16),
		cfd.MustParse(`i2: [name] -> [phn]`),
		cfd.MustParse(`i4: [street, city] -> [zip]`),
	}
}

// chaosCluster builds a 3-site cluster over the Cust workload, wrapping
// each site through wrap (identity for the baseline).
func chaosCluster(t *testing.T, dataSeed int64, wrap func(i int, s *core.Site) core.SiteAPI) (*core.Cluster, []*core.Site) {
	t.Helper()
	data := workload.Cust(workload.CustConfig{N: 1_500, Seed: dataSeed, ErrRate: 0.05})
	h, err := partition.Uniform(data, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	bare := make([]*core.Site, h.N())
	sites := make([]core.SiteAPI, h.N())
	for i, frag := range h.Fragments {
		bare[i] = core.NewSite(i, frag, relation.True())
		sites[i] = wrap(i, bare[i])
	}
	cl, err := core.NewCluster(h.Schema, sites)
	if err != nil {
		t.Fatal(err)
	}
	return cl, bare
}

func identicalViolations(t *testing.T, label string, got, want *core.SetResult) {
	t.Helper()
	for ci := range want.PerCFD {
		g, w := got.PerCFD[ci], want.PerCFD[ci]
		if g.Len() != w.Len() {
			t.Fatalf("%s: cfd %d: %d patterns, want %d", label, ci, g.Len(), w.Len())
		}
		for i, tup := range w.Tuples() {
			if !tup.Equal(g.Tuple(i)) {
				t.Fatalf("%s: cfd %d: pattern %d differs: %v vs %v", label, ci, i, g.Tuple(i), tup)
			}
		}
	}
}

func assertNoDeposits(t *testing.T, label string, bare []*core.Site) {
	t.Helper()
	for i, s := range bare {
		if n := s.PendingDeposits(); n != 0 {
			t.Errorf("%s: site %d still buffers %d deposit tasks", label, i, n)
		}
	}
}

// TestChaosRetryEquivalence is the headline invariant: a 10%% per-call
// fault rate under FailRetry produces violation sets, ShippedTuples,
// and ModeledTime byte-identical to the fault-free run — the retries
// are charged only to the Retries/Faults channels, never to the
// figures.
func TestChaosRetryEquivalence(t *testing.T) {
	base := chaosSeed(t)
	var totalRetries int64
	for _, seed := range []int64{3, 5, 9} {
		baseline, bare := chaosCluster(t, seed, func(_ int, s *core.Site) core.SiteAPI { return s })
		want, err := core.ClustDetect(baseline, chaosCFDs(), core.PatDetectS, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want.Retries != 0 || want.Faults != 0 || want.Partial || want.Coverage != 1 {
			t.Fatalf("seed %d: fault-free run reports fault stats: %+v", seed, want)
		}
		assertNoDeposits(t, "baseline", bare)

		faulted, fbare := chaosCluster(t, seed, func(i int, s *core.Site) core.SiteAPI {
			return faulty.Wrap(s, faulty.Plan{Seed: base + seed*31 + int64(i), Rate: 0.10})
		})
		got, err := core.ClustDetect(faulted, chaosCFDs(), core.PatDetectS,
			core.Options{Failure: core.FailRetry, Retry: fastRetry})
		if err != nil {
			t.Fatalf("seed %d: faulted run failed: %v", seed, err)
		}
		identicalViolations(t, "retry-equivalence", got, want)
		if got.ShippedTuples != want.ShippedTuples {
			t.Errorf("seed %d: shipped %d tuples, fault-free shipped %d", seed, got.ShippedTuples, want.ShippedTuples)
		}
		if got.ModeledTime != want.ModeledTime {
			t.Errorf("seed %d: modeled time %v, fault-free %v", seed, got.ModeledTime, want.ModeledTime)
		}
		if got.Partial || len(got.ExcludedSites) != 0 || got.Coverage != 1 {
			t.Errorf("seed %d: FailRetry must never degrade: %+v", seed, got)
		}
		if got.Faults < got.Retries || got.Retries < 0 {
			t.Errorf("seed %d: fault accounting inconsistent: %d faults, %d retries", seed, got.Faults, got.Retries)
		}
		totalRetries += got.Retries
		assertNoDeposits(t, "faulted", fbare)
	}
	// At a 10% rate across three seeds the runs must actually have
	// retried — otherwise the equivalence above was vacuous.
	if totalRetries == 0 {
		t.Error("no retries happened across any seed — the fault injection did not bite")
	}
}

// TestChaosDegradePartial holds one site down for good and detects
// under FailDegrade: the run completes partially, names the excluded
// site, reports the reachable coverage, matches a run over just the
// reachable fragments violation for violation, and leaks no deposits.
func TestChaosDegradePartial(t *testing.T) {
	const down = 2
	data := workload.Cust(workload.CustConfig{N: 1_500, Seed: 4, ErrRate: 0.05})
	h, err := partition.Uniform(data, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	bare := make([]*core.Site, h.N())
	sites := make([]core.SiteAPI, h.N())
	for i, frag := range h.Fragments {
		bare[i] = core.NewSite(i, frag, relation.True())
		if i == down {
			// CrashAt 1 with no rebuild: dead from the first call on.
			sites[i] = faulty.Wrap(bare[i], faulty.Plan{CrashAt: 1})
		} else {
			sites[i] = bare[i]
		}
	}
	cl, err := core.NewCluster(h.Schema, sites)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.ClustDetect(cl, chaosCFDs(), core.PatDetectS,
		core.Options{Failure: core.FailDegrade, Retry: fastRetry})
	if err != nil {
		t.Fatalf("degraded run failed outright: %v", err)
	}
	if !res.Partial {
		t.Fatal("run over a dead site must report Partial")
	}
	if len(res.ExcludedSites) != 1 || res.ExcludedSites[0] != down {
		t.Fatalf("ExcludedSites = %v, want [%d]", res.ExcludedSites, down)
	}
	reachable := h.Fragments[0].Len() + h.Fragments[1].Len()
	wantCov := float64(reachable) / float64(data.Len())
	if res.Coverage < wantCov-1e-9 || res.Coverage > wantCov+1e-9 {
		t.Errorf("Coverage = %v, want %v (%d of %d tuples reachable)", res.Coverage, wantCov, reachable, data.Len())
	}
	assertNoDeposits(t, "degraded", bare)

	// Every reported violation verifies against the reachable data: the
	// partial answer equals (as a pattern set) a clean run over a
	// cluster holding only the reachable fragments.
	rh := &partition.Horizontal{Schema: h.Schema, Fragments: h.Fragments[:down]}
	rcl, err := core.FromHorizontal(rh)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.ClustDetect(rcl, chaosCFDs(), core.PatDetectS, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for ci := range want.PerCFD {
		if !samePatternSet(res.PerCFD[ci], want.PerCFD[ci]) {
			t.Errorf("cfd %d: degraded patterns differ from the reachable-only run\n got  %v\n want %v",
				ci, res.PerCFD[ci], want.PerCFD[ci])
		}
	}
}

// samePatternSet compares two pattern relations as sets (a degraded
// re-assignment may enumerate blocks in a different order).
func samePatternSet(a, b *relation.Relation) bool {
	canon := func(tup relation.Tuple) string {
		var bs []byte
		for _, v := range tup {
			bs = binary.AppendUvarint(bs, uint64(len(v)))
			bs = append(bs, v...)
		}
		return string(bs)
	}
	key := func(r *relation.Relation) []string {
		out := make([]string, r.Len())
		for i, t := range r.Tuples() {
			out[i] = canon(t)
		}
		sort.Strings(out)
		return out
	}
	ka, kb := key(a), key(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// TestChaosFaultMatrix runs every injected fault class under every
// policy and asserts the one invariant that must hold regardless of
// outcome: zero buffered deposits on every site afterwards.
func TestChaosFaultMatrix(t *testing.T) {
	base := chaosSeed(t)
	classes := []struct {
		name string
		plan func(i int) faulty.Plan
	}{
		{"scheduled-deposit", func(i int) faulty.Plan {
			return faulty.Plan{ErrOn: map[string][]int{"Deposit": {1, 3}}}
		}},
		{"scheduled-detect", func(i int) faulty.Plan {
			return faulty.Plan{ErrOn: map[string][]int{"DetectAssignedSet": {1}}}
		}},
		{"scheduled-stats", func(i int) faulty.Plan {
			return faulty.Plan{ErrOn: map[string][]int{"SigmaStats": {1}}}
		}},
		{"rate", func(i int) faulty.Plan {
			// 15%: high enough to bite every run, low enough that the
			// per-call retry budget absorbs it with margin (residual
			// ~5e-4 per call) — a higher rate would legitimately
			// exclude sites under FailDegrade.
			return faulty.Plan{Seed: base + int64(i) + 11, Rate: 0.15}
		}},
		{"crash-midrun", func(i int) faulty.Plan {
			if i != 1 {
				return faulty.Plan{}
			}
			return faulty.Plan{CrashAt: 10}
		}},
	}
	policies := []core.FailurePolicy{core.FailFast, core.FailRetry, core.FailDegrade}
	for _, cls := range classes {
		for _, pol := range policies {
			t.Run(cls.name+"/"+pol.String(), func(t *testing.T) {
				cl, bare := chaosCluster(t, 7, func(i int, s *core.Site) core.SiteAPI {
					return faulty.Wrap(s, cls.plan(i))
				})
				// The outcome depends on class × policy (an error under
				// FailFast, recovery or a partial answer otherwise); the
				// deposit invariant must hold either way.
				res, err := core.ClustDetect(cl, chaosCFDs(), core.PatDetectS,
					core.Options{Failure: pol, Retry: fastRetry})
				if err == nil && res == nil {
					t.Fatal("nil result without error")
				}
				if pol != core.FailFast && cls.name != "crash-midrun" && err != nil {
					t.Errorf("%s under %v should recover, got %v", cls.name, pol, err)
				}
				if pol == core.FailDegrade && err != nil {
					t.Errorf("FailDegrade should always produce an answer, got %v", err)
				}
				assertNoDeposits(t, cls.name+"/"+pol.String(), bare)
			})
		}
	}
}

// TestChaosBreakerOpensOnDeadSite: a site that keeps failing trips its
// breaker; Health surfaces the open state, and a healthy cluster
// reports closed everywhere.
func TestChaosBreakerOpensOnDeadSite(t *testing.T) {
	cl, _ := chaosCluster(t, 7, func(i int, s *core.Site) core.SiteAPI {
		if i == 1 {
			return faulty.Wrap(s, faulty.Plan{CrashAt: 1})
		}
		return s
	})
	for _, st := range cl.Health() {
		if st != core.BreakerClosed {
			t.Fatalf("fresh cluster reports %v, want all closed", st)
		}
	}
	// Six attempts per call: the dead site racks up more consecutive
	// failures than the breaker threshold within a single call's retry
	// schedule, so the trip is observable before exclusion stops the
	// traffic.
	retry := fastRetry
	retry.Attempts = 6
	_, err := core.ClustDetect(cl, chaosCFDs(), core.PatDetectS,
		core.Options{Failure: core.FailDegrade, Retry: retry})
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	health := cl.Health()
	if health[1] == core.BreakerClosed {
		t.Errorf("site 1 kept failing its whole retry schedule; breaker still closed: %v", health)
	}
	if health[0] != core.BreakerClosed || health[2] != core.BreakerClosed {
		t.Errorf("healthy sites should stay closed: %v", health)
	}
}

// TestChaosStoreRestartByteIdentical pins the disk-backed restart
// contract: a store-backed site (core.OpenStoreSite) that crashes and
// restarts mid-run recovers its fragment — base file plus WAL-replayed
// deltas — from the store directory, and the run's violations are
// byte-identical to a fault-free run over never-crashed in-memory
// sites holding the same post-delta data. Contrast with
// TestCrashRestartLosesState in internal/faulty, where the rebuild
// closure hands back the *original* fragment and the delta is lost.
func TestChaosStoreRestartByteIdentical(t *testing.T) {
	const crashed = 1
	ctx := context.Background()
	data := workload.Cust(workload.CustConfig{N: 1_500, Seed: 8, ErrRate: 0.05})
	h, err := partition.Uniform(data, 3, 1)
	if err != nil {
		t.Fatal(err)
	}

	// One delta per site, fixed up front so both runs apply identical
	// mutations: drop two rows, insert two rows sampled from elsewhere
	// in the workload (dirty rows included).
	deltas := make([]relation.Delta, h.N())
	for i := range deltas {
		var ins []relation.Tuple
		for k := 0; k < 2; k++ {
			src := data.Tuple((i*211 + k*97) % data.Len())
			ins = append(ins, append(relation.Tuple(nil), src...))
		}
		deltas[i] = relation.Delta{Deletes: []int{0, 5}, Inserts: ins}
	}

	// Store directories come first: the in-memory baseline mutates the
	// fragments in place when its deltas apply.
	dirs := make([]string, h.N())
	for i, frag := range h.Fragments {
		dirs[i] = t.TempDir()
		if _, err := colstore.WriteRelationDir(dirs[i], frag); err != nil {
			t.Fatal(err)
		}
	}

	// Fault-free in-memory baseline over the same deltas.
	memSites := make([]core.SiteAPI, h.N())
	for i, frag := range h.Fragments {
		s := core.NewSite(i, frag, relation.True())
		if _, err := s.ApplyDelta(ctx, deltas[i], "d"+strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
		memSites[i] = s
	}
	memCl, err := core.NewCluster(h.Schema, memSites)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.ClustDetect(memCl, chaosCFDs(), core.PatDetectS, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Store-backed restartable sites. The crashed site's call 1 is its
	// ApplyDelta — the WAL entry that must survive; call 2 crashes it,
	// and the retry of that same call finds the site down past
	// RestartAfter, so the wrapper closes the corpse and the rebuild
	// closure reopens the store directory.
	rebuilds := make([]int, h.N())
	wrappers := make([]*faulty.Site, h.N())
	sites := make([]core.SiteAPI, h.N())
	for i := range h.Fragments {
		var plan faulty.Plan
		if i == crashed {
			plan = faulty.Plan{CrashAt: 2, RestartAfter: 1}
		}
		w := faulty.WrapRestartable(func() core.SiteAPI {
			rebuilds[i]++
			s, err := core.OpenStoreSite(i, dirs[i], relation.True())
			if err != nil {
				panic(err)
			}
			return s
		}, plan)
		wrappers[i], sites[i] = w, w
	}
	t.Cleanup(func() {
		for _, w := range wrappers {
			w.Inner().(*core.Site).Close()
		}
	})
	for i := range sites {
		if _, err := sites[i].ApplyDelta(ctx, deltas[i], "d"+strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := core.NewCluster(h.Schema, sites)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.ClustDetect(cl, chaosCFDs(), core.PatDetectS,
		core.Options{Failure: core.FailRetry, Retry: fastRetry})
	if err != nil {
		t.Fatalf("store-backed run failed: %v", err)
	}

	if got.Faults == 0 {
		t.Error("the crash never bit — the restart path was not exercised")
	}
	if rebuilds[crashed] != 2 {
		t.Errorf("site %d rebuilt %d times, want 2 (construction + restart)", crashed, rebuilds[crashed])
	}
	if gen := wrappers[crashed].Inner().(*core.Site).Generation(); gen != 1 {
		t.Errorf("recovered site is at generation %d, want 1 (the replayed pre-crash delta)", gen)
	}
	identicalViolations(t, "store-restart", got, want)
	if got.Partial || got.Coverage != 1 {
		t.Errorf("FailRetry must never degrade: %+v", got)
	}
}

// TestChaosIncrementalRetry: the incremental path treats injected
// transient faults like stale state — invalidate and reseed — and its
// figures stay byte-identical to the fault-free incremental run.
func TestChaosIncrementalRetry(t *testing.T) {
	run := func(wrap func(i int, s *core.Site) core.SiteAPI, opt core.Options) (*core.SetResult, []*core.Site) {
		cl, bare := chaosCluster(t, 6, wrap)
		p, err := core.CompileSet(context.Background(), cl, chaosCFDs(), core.PatDetectS, opt, true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Detect(context.Background()); err != nil {
			t.Fatal(err)
		}
		res, err := p.DetectIncremental(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res, bare
	}
	base := chaosSeed(t)
	want, _ := run(func(_ int, s *core.Site) core.SiteAPI { return s }, core.Options{})
	// A modest rate: the incremental pipeline recovers via whole-round
	// reseeds, so every faulted round repeats from the top.
	got, bare := run(func(i int, s *core.Site) core.SiteAPI {
		return faulty.Wrap(s, faulty.Plan{Seed: base + int64(i) + 1, Rate: 0.05})
	}, core.Options{Failure: core.FailRetry, Retry: fastRetry})
	identicalViolations(t, "incremental", got, want)
	if got.ShippedTuples != want.ShippedTuples || got.ModeledTime != want.ModeledTime {
		t.Errorf("incremental figures bent under faults: %d/%v vs %d/%v",
			got.ShippedTuples, got.ModeledTime, want.ShippedTuples, want.ModeledTime)
	}
	if got.Partial {
		t.Error("incremental serving must never report Partial")
	}
	assertNoDeposits(t, "incremental", bare)
}
