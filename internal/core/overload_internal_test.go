// Internal tests for the overload plumbing: the fast-fail sleep that
// refuses to outlive its context, and the breaker flap regime a
// healthy Ping produces against failing work calls.
package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestSleepCtxFailsFastPastDeadline pins the retry-after-vs-deadline
// contract: a sleep that provably cannot finish within the context
// deadline returns DeadlineExceeded immediately instead of burning the
// remaining budget — a 10s backpressure hint against a 50ms budget
// means the run is over now, not in 50ms and certainly not in 10s.
func TestSleepCtxFailsFastPastDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := sleepCtx(ctx, 10*time.Second)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("sleepCtx = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("sleepCtx took %v to refuse an unfinishable sleep", d)
	}
}

func TestSleepCtxCompletesWithinBudget(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sleepCtx(ctx, time.Millisecond); err != nil {
		t.Fatalf("sleepCtx = %v for a sleep well within budget", err)
	}
}

// probeSite answers Ping with a fixed error and panics on everything
// else — the breaker's admit path touches nothing but Ping.
type probeSite struct {
	SiteAPI
	pingErr error
}

func (p probeSite) Ping(context.Context) error { return p.pingErr }

// TestBreakerPingFlap pins the flap regime of satellite note fame: a
// site whose work calls keep failing while its Ping stays healthy
// closes its breaker on every post-cooldown probe (the flap), whereas
// a site whose Ping fails too (err=Ping@n in the fault harness, or a
// true corpse) stays open probe after probe.
func TestBreakerPingFlap(t *testing.T) {
	ctx := context.Background()

	b := &breaker{}
	for i := 0; i < breakerThreshold; i++ {
		b.observe(false)
	}
	if b.currentState() != BreakerOpen {
		t.Fatalf("breaker %v after %d consecutive failures, want open", b.currentState(), breakerThreshold)
	}

	// Within the cooldown: rejected pre-execution, no probe issued.
	err := b.admit(ctx, 0, probeSite{pingErr: errors.New("must not be called")})
	if ErrCodeOf(err) != CodeUnavailable || !preExecution(err) {
		t.Fatalf("open-breaker rejection = %v, want pre-execution CodeUnavailable", err)
	}

	// Past the cooldown with a healthy Ping: the half-open probe
	// succeeds and the breaker closes — the "up" stroke of the flap.
	b.mu.Lock()
	b.openedAt = time.Now().Add(-2 * breakerCooldown)
	b.mu.Unlock()
	if err := b.admit(ctx, 0, probeSite{}); err != nil {
		t.Fatalf("healthy probe must close the breaker and admit: %v", err)
	}
	if b.currentState() != BreakerClosed {
		t.Fatalf("breaker %v after healthy probe, want closed", b.currentState())
	}

	// The admitted work call fails again: the failure count restarts
	// from the close, so the breaker flaps — threshold more failures
	// re-open it.
	for i := 0; i < breakerThreshold-1; i++ {
		b.observe(false)
		if b.currentState() != BreakerClosed {
			t.Fatalf("breaker opened after %d post-flap failures, want %d", i+1, breakerThreshold)
		}
	}
	b.observe(false)
	if b.currentState() != BreakerOpen {
		t.Fatalf("breaker %v after %d post-flap failures, want open", b.currentState(), breakerThreshold)
	}

	// Past the cooldown with a failing Ping (the scheduled err=Ping@n
	// fault, or a dead site): the probe fails, the breaker re-opens
	// immediately, and the caller sees a pre-execution rejection.
	b.mu.Lock()
	b.openedAt = time.Now().Add(-2 * breakerCooldown)
	b.mu.Unlock()
	err = b.admit(ctx, 0, probeSite{pingErr: errors.New("probe down")})
	if ErrCodeOf(err) != CodeUnavailable || !preExecution(err) {
		t.Fatalf("failed probe = %v, want pre-execution CodeUnavailable", err)
	}
	if b.currentState() != BreakerOpen {
		t.Fatalf("breaker %v after failed probe, want open (no flap without a healthy Ping)", b.currentState())
	}
}
