package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"distcfd/internal/cfd"
	"distcfd/internal/engine"
	"distcfd/internal/partition"
	"distcfd/internal/relation"
)

// Property-based tests (testing/quick) for the invariants the
// correctness of Section IV rests on.

// TestPropertySigmaPartitionIsFunctionOfX: σ(t) depends only on t[X] —
// the fact that lets equal-X tuples land at one coordinator (Lemma 6).
func TestPropertySigmaPartitionIsFunctionOfX(t *testing.T) {
	spec, err := NewBlockSpec([]string{"a", "b"}, [][]string{
		{"v0", "v1"}, {"v0", "_"}, {"_", "v1"}, {"_", "_"},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a1, b1 uint8) bool {
		x := []string{fmt.Sprintf("v%d", a1%3), fmt.Sprintf("v%d", b1%3)}
		first := spec.Assign(x)
		// Re-asking must be deterministic, and any tuple with equal
		// X-projection gets the same block by construction.
		return spec.Assign(x) == first && first >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPropertyLemma6 checks Lemma 6 itself on random instances:
// Vioπ(φ, D) = ∪_l Vioπ(φ_l, ∪_i H_i^l) — detecting each σ-block
// independently with its restricted CFD loses nothing and adds
// nothing, for any partitioning of D.
func TestPropertyLemma6(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		d := randomRelation(rng, 40)
		c := randomTestCFD(rng)
		view, ok := c.VariableView()
		if !ok {
			continue
		}
		spec, err := SpecFromCFD(view)
		if err != nil {
			t.Fatal(err)
		}
		// Whole-relation patterns for the variable view.
		whole, err := engine.ViolationPatterns(d, view)
		if err != nil {
			t.Fatal(err)
		}
		// Block-wise union.
		assign, _, err := spec.AssignAll(d)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for l := 0; l < spec.K(); l++ {
			block := relation.New(d.Schema())
			for i, t := range d.Tuples() {
				if assign[i] == l {
					block.MustAppend(t)
				}
			}
			restricted := spec.RestrictCFD(view, l)
			pats, err := engine.ViolationPatterns(block, restricted)
			if err != nil {
				t.Fatal(err)
			}
			idx := make([]int, pats.Schema().Arity())
			for i := range idx {
				idx[i] = i
			}
			for _, p := range pats.Tuples() {
				got[p.Key(idx)] = true
			}
		}
		want := map[string]bool{}
		idx := make([]int, whole.Schema().Arity())
		for i := range idx {
			idx[i] = i
		}
		for _, p := range whole.Tuples() {
			want[p.Key(idx)] = true
		}
		if !sameSet(got, want) {
			t.Fatalf("trial %d: Lemma 6 broken\n got %v\nwant %v\ncfd %v",
				trial, keys(got), keys(want), view)
		}
	}
}

// TestPropertyProposition5 checks Proposition 5 on random instances
// and partitions: constant CFDs are fully checked by the union of
// local checks, with zero shipment, for every partitioning.
func TestPropertyProposition5(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		d := randomRelation(rng, 50)
		// Random constant CFD.
		lhs := []string{"a", "b"}
		pats := []cfd.PatternTuple{}
		for p := 0; p < 1+rng.Intn(3); p++ {
			pats = append(pats, cfd.PatternTuple{
				LHS: []string{fmt.Sprintf("a%d", rng.Intn(3)), cfd.Wildcard},
				RHS: []string{fmt.Sprintf("c%d", rng.Intn(2))},
			})
		}
		c := cfd.MustNew("const", lhs, []string{"c"}, pats)
		h, err := partition.Uniform(d, 1+rng.Intn(4), int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		cl, err := FromHorizontal(h)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []Algorithm{CTRDetect, PatDetectS, PatDetectRT} {
			res, err := DetectSingle(cl, c, algo, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.ShippedTuples != 0 || !res.LocalOnly {
				t.Fatalf("trial %d %v: constant CFD shipped %d tuples", trial, algo, res.ShippedTuples)
			}
			vio, err := cfd.NaiveViolations(d, c)
			if err != nil {
				t.Fatal(err)
			}
			if !sameSet(patternsOf(res.Patterns), oraclePatterns(t, d, c, vio)) {
				t.Fatalf("trial %d %v: constant CFD wrong answer", trial, algo)
			}
		}
	}
}

// TestPropertyDetectionPartitionInvariant: the violation patterns a
// run produces are independent of how the data is partitioned and of
// the algorithm — only shipment and timing may differ.
func TestPropertyDetectionPartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 12; trial++ {
		d := randomRelation(rng, 70)
		c := randomTestCFD(rng)
		var reference map[string]bool
		for _, n := range []int{1, 2, 5} {
			h, err := partition.Uniform(d, n, int64(trial*10+n))
			if err != nil {
				t.Fatal(err)
			}
			cl, err := FromHorizontal(h)
			if err != nil {
				t.Fatal(err)
			}
			res, err := DetectSingle(cl, c, PatDetectRT, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := patternsOf(res.Patterns)
			if reference == nil {
				reference = got
			} else if !sameSet(got, reference) {
				t.Fatalf("trial %d: answer depends on partitioning (%d sites)", trial, n)
			}
		}
	}
}

// TestPropertyCheckSizesConsistent: Σ_i received(i) = shipped, and
// coordinators' check sizes account for every received tuple.
func TestPropertyCheckSizesConsistent(t *testing.T) {
	f := func(seed int64, sites uint8) bool {
		n := int(sites%5) + 2
		rng := rand.New(rand.NewSource(seed))
		d := randomRelation(rng, 60)
		h, err := partition.Uniform(d, n, seed)
		if err != nil {
			return false
		}
		cl, err := FromHorizontal(h)
		if err != nil {
			return false
		}
		res, err := DetectSingle(cl, randomTestCFD(rng), PatDetectS, Options{})
		if err != nil {
			return false
		}
		var received int64
		for i := 0; i < cl.N(); i++ {
			received += res.Metrics.ReceivedBy(i)
		}
		return received == res.ShippedTuples
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
