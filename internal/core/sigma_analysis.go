package core

import (
	"fmt"

	"distcfd/internal/cfd"
	"distcfd/internal/dist"
	"distcfd/internal/relation"
)

// Compile-time Σ analysis (Fan et al., TODS 2008, via cfd.AnalyzeSigma):
// CompileSet can reject an inconsistent rule set before a single tuple
// ships, and can collapse duplicate CFDs — identical up to their name —
// so the duplicate's mining, routing, and shipment work happens once.
// Pruning is equivalence-pinned: the collapsed CFD's violations,
// ShippedTuples, and ModeledTime are exactly what the unpruned plan
// would report (see Plan.fillAliases); only the control plane, which
// records work that actually happened, gets smaller.

// SigmaMode selects the compile-time Σ analysis level.
type SigmaMode int

const (
	// SigmaOff compiles Σ as given (the default).
	SigmaOff SigmaMode = iota
	// SigmaCheck runs the static analysis: CompileSet fails fast with
	// a witness-bearing *cfd.InconsistentError when Σ is inconsistent,
	// and the full report (implied units, irreducible cover, duplicate
	// groups) is retained on the plan for inspection.
	SigmaCheck
	// SigmaPrune is SigmaCheck plus duplicate collapse: on unclustered
	// plans, CFDs identical up to their name compile to one unit; the
	// copies are served as aliases with identical violations and
	// pinned accounting. Clustered plans already share the σ work
	// across a duplicate group, so SigmaPrune only checks and reports
	// there (see analyzeSigma).
	SigmaPrune
)

func (m SigmaMode) String() string {
	switch m {
	case SigmaOff:
		return "SigmaOff"
	case SigmaCheck:
		return "SigmaCheck"
	case SigmaPrune:
		return "SigmaPrune"
	default:
		return fmt.Sprintf("SigmaMode(%d)", int(m))
	}
}

// sigmaAlias is one CFD index CompileSet pruned as a duplicate: its
// results are served from the representative's unit.
type sigmaAlias struct {
	idx    int              // the pruned CFD's index in the compiled set
	rep    int              // the representative's index (first of the group)
	schema *relation.Schema // the alias's own Vioπ pattern schema
}

// analyzeSigma runs the Σ analysis per mode. It returns the report
// (nil under SigmaOff), the active CFD indices to compile, and the
// pruned aliases (both trivial unless SigmaPrune finds duplicates).
//
// Duplicate collapse applies only to unclustered plans, where every
// duplicate is otherwise its own full unit (mining, σ spec, pipeline).
// Clustered plans keep their duplicates: LHS-containment clustering
// already shares the σ work across the group, and removing a member
// can flip a 2-member cluster into a singleton — a different compile
// path (SpecFromCFD + mining instead of the cluster's projected spec)
// with genuinely different routing, breaking the pinned-accounting
// contract. The report still lists the groups either way.
func analyzeSigma(cl *Cluster, cfds []*cfd.CFD, mode SigmaMode, clustered bool) (*cfd.SigmaReport, []int, []sigmaAlias, error) {
	all := make([]int, len(cfds))
	for i := range cfds {
		all[i] = i
	}
	if mode == SigmaOff {
		return nil, all, nil, nil
	}
	report := cfd.AnalyzeSigma(cfds)
	if report.Witness != nil {
		return nil, nil, nil, &cfd.InconsistentError{Witness: report.Witness}
	}
	if mode != SigmaPrune || clustered || len(report.Duplicates) == 0 {
		return report, all, nil, nil
	}
	repOf := map[int]int{}
	for _, g := range report.Duplicates {
		for _, i := range g[1:] {
			repOf[i] = g[0]
		}
	}
	var active []int
	var aliases []sigmaAlias
	for i, c := range cfds {
		rep, pruned := repOf[i]
		if !pruned {
			active = append(active, i)
			continue
		}
		ps, err := cl.schema.Project("viopi_"+c.Name, c.X)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: cfd %s: %w", c.Name, err)
		}
		aliases = append(aliases, sigmaAlias{idx: i, rep: rep, schema: ps})
	}
	return report, active, aliases, nil
}

// unitOf returns the index of the plan unit processing CFD idx, or -1
// for a pruned alias.
func (p *Plan) unitOf(idx int) int {
	for gi, members := range p.clusters {
		for _, m := range members {
			if m == idx {
				return gi
			}
		}
	}
	return -1
}

// fillAliases completes a run's result for the CFDs CompileSet pruned
// as duplicates. The alias's violations are the representative's,
// rebuilt under the alias's own pattern schema. Accounting is pinned
// to the unpruned plan: the representative's data-plane metrics are
// replayed once per alias (dist.Metrics.MergeData, which leaves the
// control plane alone, so pruned plans report strictly fewer control
// bytes). Pruning happens only on unclustered plans (see
// analyzeSigma), so every representative is a singleton unit whose
// metrics are exactly what the duplicate's own unit would have
// recorded; the guard below is belt and suspenders.
func (p *Plan) fillAliases(res *SetResult, unitMetrics []*dist.Metrics) {
	for _, al := range p.aliases {
		rep := res.PerCFD[al.rep]
		out := relation.New(al.schema)
		for _, t := range rep.Tuples() {
			out.MustAppend(t)
		}
		res.PerCFD[al.idx] = out
		if gi := p.unitOf(al.rep); gi >= 0 && len(p.clusters[gi]) == 1 {
			res.Metrics.MergeData(unitMetrics[gi])
		}
	}
}

// modeledSum totals the per-unit modeled times in CFD-index order:
// each unit is charged at its first member's index, and each pruned
// alias of a singleton representative charges the representative's
// unit again at the alias's own index. This reproduces the unpruned
// plan's float addition order exactly, so a pruned plan's ModeledTime
// is byte-identical to the unpruned one's — equality the Σ-pruning
// equivalence tests check bit for bit.
func (p *Plan) modeledSum(unitModeled []float64) float64 {
	at := make([]float64, len(p.cfds))
	present := make([]bool, len(p.cfds))
	for gi, members := range p.clusters {
		at[members[0]] = unitModeled[gi]
		present[members[0]] = true
	}
	for _, al := range p.aliases {
		if gi := p.unitOf(al.rep); gi >= 0 && len(p.clusters[gi]) == 1 {
			at[al.idx] = unitModeled[gi]
			present[al.idx] = true
		}
	}
	sum := 0.0
	for i, ok := range present {
		if ok {
			sum += at[i]
		}
	}
	return sum
}
