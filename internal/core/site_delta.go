package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"distcfd/internal/cfd"
	"distcfd/internal/engine"
	"distcfd/internal/relation"
)

// This file is the site half of incremental detection: every site
// keeps a fragment generation counter, a bounded log of applied deltas
// (inserted tuples and the removed tuples' values), and — when it
// coordinates σ-blocks for an incremental session — retained
// per-(CFD, block) group states (engine.IncrementalState) that delta
// blocks are folded into. ApplyDelta additionally maintains the
// serving caches of plan-once/detect-many (σ-routing entries, the
// constant-unit matched sets) generation by generation, replacing the
// former "any mutation ⇒ wholesale reset" with an O(|Δ|) refresh, so a
// fresh full Detect after deltas is cheap too.

// Bounds. A driver that falls further behind than the log keeps (or
// whose session was evicted) gets a stale error and reseeds.
const (
	deltaLogCap = 512
	sessionsCap = 32
)

// staleMarker survives the trip through net/rpc's string-typed errors,
// so IsStaleIncremental works on both sides of the wire.
const staleMarker = "incremental state stale"

// ErrStaleIncremental reports that a site cannot serve an incremental
// request from retained state — the delta log was trimmed past the
// driver's watermark, the session's fold states were evicted, or the
// fragment was mutated behind the log's back (a non-delta mutation).
// The driver recovers by reseeding: one full shipment rebuilds the
// retained state, and subsequent rounds are incremental again.
var ErrStaleIncremental = errors.New("core: " + staleMarker + " — full reseed required")

// IsStaleIncremental reports whether err is the stale-state signal:
// either the typed CodeStale carried by the wire-v5 error envelope, or
// — the fallback for pre-v5 peers and in-process errors — a message
// containing the stale marker (net/rpc flattens errors to strings).
func IsStaleIncremental(err error) bool {
	if err == nil {
		return false
	}
	if ErrCodeOf(err) == CodeStale {
		return true
	}
	return strings.Contains(err.Error(), staleMarker)
}

// DeltaInfo reports the site state after an ApplyDelta.
type DeltaInfo struct {
	// Gen is the fragment generation after the delta: one per apply,
	// plus one fence step when the apply found a mutation that had
	// bypassed the delta log.
	Gen int64
	// NumTuples is the new fragment size |Di|.
	NumTuples int
}

// DeltaBlocks is the σ-routed view of a site's delta log suffix: per
// requested block, the inserted and the deleted tuples projected onto
// the task attributes. Empty blocks are omitted.
type DeltaBlocks struct {
	// ToGen is the generation the extraction covers up to — the
	// driver's next watermark for this site.
	ToGen int64
	// TotalIns / TotalDel count the log suffix before block filtering;
	// the driver's delete-ratio fallback heuristic reads them.
	TotalIns, TotalDel int
	// Ins and Del map block index → projected tuples.
	Ins, Del map[int]*relation.Relation
}

// FoldArgs parameterizes a coordinator's incremental detection step.
type FoldArgs struct {
	// Session names the retained state; minted once per (plan unit,
	// seed) by the driver, never reused.
	Session string
	// Spec is the σ-partitioning in effect.
	Spec *BlockSpec
	// Blocks lists every block this site coordinates for the session.
	Blocks []int
	// CFDs are the dependencies checked inside each block. With
	// RestrictSingle (the single-CFD pipeline), CFDs holds exactly one
	// entry and each block checks the Lemma 6 restriction of it;
	// otherwise every CFD's full tableau is checked per block (the
	// ClustDetect coordinator step).
	CFDs           []*cfd.CFD
	RestrictSingle bool
	// Seed resets the session's states and folds the full local blocks
	// (deposits then carry the other sites' full blocks as inserts).
	Seed bool
	// FromGen is the local-delta watermark: non-seed folds consume the
	// log suffix after it for the session's blocks.
	FromGen int64
}

// FoldReply reports a coordinator's fold: the current violating
// X-patterns per CFD (distinct, unioned over the session's blocks) and
// the generation the local fold advanced to.
type FoldReply struct {
	Patterns []*relation.Relation
	ToGen    int64
}

// deltaLogEntry is one applied delta: the inserted tuples and the
// removed tuples' values (full schema), which is all downstream state
// needs — σ-routing and group folding are value-based.
type deltaLogEntry struct {
	gen int64
	ins []relation.Tuple
	del []relation.Tuple
}

// foldSession is the retained coordinator state of one incremental
// session: per block, one IncrementalState per folded CFD.
type foldSession struct {
	specFP string
	states map[int][]*engine.IncrementalState
	schema *relation.Schema // the task projection the states fold
}

// ApplyDelta applies d to the fragment, advances the generation, logs
// the delta, and maintains the serving caches in place. It must not
// run concurrently with detection on this site (single-writer, as for
// any mutation); concurrent readers holding the previous encoded view
// stay consistent (see relation.Apply). A duplicate nonce marks the
// retransmit of an apply that already landed; the remembered DeltaInfo
// is returned without applying twice.
func (s *Site) ApplyDelta(ctx context.Context, d relation.Delta, nonce string) (DeltaInfo, error) {
	if err := ctx.Err(); err != nil {
		return DeltaInfo{}, err
	}
	s.deltaMu.Lock()
	defer s.deltaMu.Unlock()
	if nonce != "" {
		if info, dup := s.deltaNonces[nonce]; dup {
			return info, nil
		}
	}
	delIdx, err := relation.NormalizeDeletes(d.Deletes, s.frag.Len())
	if err != nil {
		return DeltaInfo{}, err
	}
	for i, t := range d.Inserts {
		if !s.pred.IsTrue() && !s.pred.Eval(s.frag.Schema(), t) {
			// Di = σFi(D) is an invariant the Fi ∧ Fφ pruning relies on;
			// silently accepting a tuple the predicate excludes would
			// make both fresh and incremental detection skip it.
			return DeltaInfo{}, fmt.Errorf("core: site %d: delta insert %d violates the fragment predicate %v", s.id, i, s.pred)
		}
	}
	pre := s.frag.VersionIfBuilt()
	// A mutation that bypassed ApplyDelta (Append/SortBy) left the log
	// and every retained session blind to it; fence them out before
	// logging this delta, or later rounds would fold a log suffix that
	// silently misses the foreign change.
	s.fenceForeignLocked(pre)
	removed, err := s.frag.Apply(d)
	if err != nil {
		return DeltaInfo{}, err
	}
	post := s.frag.Version()
	s.gen++
	s.dlog = append(s.dlog, deltaLogEntry{gen: s.gen, ins: d.Inserts, del: removed})
	if len(s.dlog) > deltaLogCap {
		drop := len(s.dlog) - deltaLogCap
		s.dlogStart = s.dlog[drop-1].gen
		s.dlog = append(s.dlog[:0:0], s.dlog[drop:]...)
	}
	s.maintainSigma(pre, post, delIdx, d.Inserts)
	s.maintainConsts(pre, post, removed, d.Inserts)
	s.encAtGen = post
	info := DeltaInfo{Gen: s.gen, NumTuples: s.frag.Len()}
	if nonce != "" {
		if s.deltaNonces == nil {
			s.deltaNonces = make(map[string]DeltaInfo)
		}
		if len(s.deltaNonceLog) >= deltaNonceCap {
			delete(s.deltaNonces, s.deltaNonceLog[0])
			s.deltaNonceLog = s.deltaNonceLog[1:]
		}
		s.deltaNonces[nonce] = info
		s.deltaNonceLog = append(s.deltaNonceLog, nonce)
	}
	return info, nil
}

// Generation returns the fragment generation (for tests and tooling).
func (s *Site) Generation() int64 {
	s.deltaMu.Lock()
	defer s.deltaMu.Unlock()
	return s.gen
}

// maintainSigma rolls every cached σ-routing entry forward across one
// delta when the cache matches the pre-delta view; a cache already
// stale (non-delta mutation interleaved) is dropped instead.
func (s *Site) maintainSigma(pre, post any, delIdx []int, ins []relation.Tuple) {
	s.sigMu.Lock()
	defer s.sigMu.Unlock()
	if len(s.sigma) == 0 {
		return
	}
	if s.sigEnc == nil || s.sigEnc != pre {
		s.sigma = make(map[string]*sigmaEntry)
		s.sigEnc = nil
		return
	}
	for _, ent := range s.sigma {
		xi, err := s.frag.Schema().Indices(ent.spec.X)
		if err != nil {
			// Cannot happen for entries built against this schema;
			// degrade to a reset rather than serve wrong routing.
			s.sigma = make(map[string]*sigmaEntry)
			s.sigEnc = nil
			return
		}
		ent.applyDelta(delIdx, ins, xi)
	}
	s.sigEnc = post
}

// maintainConsts folds one delta into every cached constant-unit state
// when the cache matches the pre-delta view.
func (s *Site) maintainConsts(pre, post any, removed, ins []relation.Tuple) {
	s.constMu.Lock()
	defer s.constMu.Unlock()
	if len(s.consts) == 0 {
		return
	}
	if s.constEnc == nil || s.constEnc != pre {
		s.consts = make(map[string]*constEntry)
		s.constEnc = nil
		return
	}
	for _, ent := range s.consts {
		ent.out = nil // the cached extraction no longer matches
		if !ent.st.HasUnits() {
			continue
		}
		for _, t := range removed {
			ent.st.Delete(t)
		}
		for _, t := range ins {
			ent.st.Insert(t)
		}
	}
	s.constEnc = post
}

// deltaConsistent reports whether the delta log still describes the
// fragment: false after a non-delta mutation (Append/SortBy), which
// the log cannot see.
func (s *Site) deltaConsistent() bool {
	return s.encAtGen != nil && s.encAtGen == s.frag.VersionIfBuilt()
}

// reanchorLocked re-anchors the delta log on the fragment's current
// state at a seed. If the fragment was mutated outside ApplyDelta, the
// log and every retained fold state at this site are blind to the
// change, and the damage is not limited to the seeding session — other
// sessions' watermarks still look servable. So the re-anchor fences
// them out: the generation advances past every outstanding watermark,
// the log is trimmed to the fence (any fromGen below it now reports
// stale, forcing those sessions to reseed too), and the fold sessions
// are dropped wholesale. Callers hold deltaMu.
func (s *Site) reanchorLocked() {
	cur := s.frag.Version()
	s.fenceForeignLocked(cur)
	s.encAtGen = cur
}

// fenceForeignLocked fences out every outstanding watermark and fold
// session when the fragment's current encoded view no longer matches
// the anchored one: the generation advances past all handed-out
// watermarks, the log is trimmed to the fence, and the sessions are
// dropped. A nil anchor means no watermark was ever handed out (no
// ApplyDelta, no seed), so there is nothing to fence. Callers hold
// deltaMu and re-anchor encAtGen themselves afterwards.
func (s *Site) fenceForeignLocked(cur any) {
	if s.encAtGen == nil || s.encAtGen == cur {
		return
	}
	s.gen++
	s.dlogStart = s.gen
	s.dlog = nil
	s.sessMu.Lock()
	s.sessions = make(map[string]*foldSession)
	s.sessMu.Unlock()
}

// ExtractDeltaBlocks implements SiteAPI: the σ-routed log suffix after
// fromGen (or, seeding with fromGen < 0, the full current blocks as
// inserts), projected onto attrs, for the wanted blocks.
func (s *Site) ExtractDeltaBlocks(ctx context.Context, spec *BlockSpec, attrs []string, wanted []int, fromGen int64) (*DeltaBlocks, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.deltaMu.Lock()
	defer s.deltaMu.Unlock()
	for _, l := range wanted {
		if l < 0 || l >= spec.K() {
			return nil, fmt.Errorf("core: site %d: delta block %d out of range [0,%d)", s.id, l, spec.K())
		}
	}
	if fromGen < 0 {
		// Seed: re-anchor the log (fencing out every stale session if
		// the fragment was mutated behind it), then ship the full
		// current blocks as one big insert delta.
		s.reanchorLocked()
		out := &DeltaBlocks{ToGen: s.gen, Ins: map[int]*relation.Relation{}, Del: map[int]*relation.Relation{}}
		full, err := s.fullBlocks(spec, attrs, wanted, s.frag.Schema().Name()+"_ship")
		if err != nil {
			return nil, err
		}
		for l, r := range full {
			if r.Len() > 0 {
				out.Ins[l] = r
			}
		}
		return out, nil
	}
	out := &DeltaBlocks{ToGen: s.gen, Ins: map[int]*relation.Relation{}, Del: map[int]*relation.Relation{}}
	if !s.deltaConsistent() {
		return nil, fmt.Errorf("%w (site %d: fragment mutated outside ApplyDelta)", ErrStaleIncremental, s.id)
	}
	if fromGen < s.dlogStart || fromGen > s.gen {
		return nil, fmt.Errorf("%w (site %d: asked from generation %d, log covers (%d,%d])",
			ErrStaleIncremental, s.id, fromGen, s.dlogStart, s.gen)
	}
	ins, del, totIns, totDel, err := s.routeLogSuffix(spec, attrs, wanted, fromGen)
	if err != nil {
		return nil, err
	}
	out.Ins, out.Del, out.TotalIns, out.TotalDel = ins, del, totIns, totDel
	return out, nil
}

// routeLogSuffix σ-routes every logged tuple after fromGen and
// projects the ones landing in a wanted block. Callers hold deltaMu.
func (s *Site) routeLogSuffix(spec *BlockSpec, attrs []string, wanted []int, fromGen int64) (ins, del map[int]*relation.Relation, totIns, totDel int, err error) {
	schema := s.frag.Schema()
	xi, err := schema.Indices(spec.X)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	ai, err := schema.Indices(attrs)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	ps, err := schema.Project(schema.Name()+"_ship", attrs)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	wantedSet := make(map[int]bool, len(wanted))
	for _, l := range wanted {
		wantedSet[l] = true
	}
	insRows := map[int][]relation.Tuple{}
	delRows := map[int][]relation.Tuple{}
	xv := make([]string, len(xi))
	route := func(t relation.Tuple, into map[int][]relation.Tuple) {
		for j, c := range xi {
			xv[j] = t[c]
		}
		if l := spec.Assign(xv); l >= 0 && wantedSet[l] {
			into[l] = append(into[l], t.Project(ai))
		}
	}
	for _, e := range s.dlog {
		if e.gen <= fromGen {
			continue
		}
		totIns += len(e.ins)
		totDel += len(e.del)
		for _, t := range e.ins {
			route(t, insRows)
		}
		for _, t := range e.del {
			route(t, delRows)
		}
	}
	build := func(rows map[int][]relation.Tuple) (map[int]*relation.Relation, error) {
		out := make(map[int]*relation.Relation, len(rows))
		for l, ts := range rows {
			r, err := relation.FromTuples(ps, ts)
			if err != nil {
				return nil, err
			}
			out[l] = r
		}
		return out, nil
	}
	if ins, err = build(insRows); err != nil {
		return nil, nil, 0, 0, err
	}
	if del, err = build(delRows); err != nil {
		return nil, nil, 0, 0, err
	}
	return ins, del, totIns, totDel, nil
}

// FoldDetect implements SiteAPI: the coordinator's incremental step.
func (s *Site) FoldDetect(ctx context.Context, args FoldArgs) (*FoldReply, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(args.CFDs) == 0 {
		return nil, fmt.Errorf("core: site %d: FoldDetect with no CFDs", s.id)
	}
	if args.RestrictSingle && len(args.CFDs) != 1 {
		return nil, fmt.Errorf("core: site %d: RestrictSingle with %d CFDs", s.id, len(args.CFDs))
	}
	s.deltaMu.Lock()
	defer s.deltaMu.Unlock()

	attrs := taskAttrs(args.Spec, args.CFDs)
	schema := s.frag.Schema()
	ps, err := schema.Project(schema.Name()+"_fold", attrs)
	if err != nil {
		return nil, err
	}

	if args.Seed {
		// Fence out stale sessions before (re)creating this one if the
		// fragment was mutated behind the log.
		s.reanchorLocked()
	}
	sess, err := s.foldSessionFor(args, ps)
	if err != nil {
		return nil, err
	}

	// Local contribution: full blocks on seed, the routed log suffix
	// otherwise (the coordinator's own delta never ships).
	var localIns, localDel map[int]*relation.Relation
	if args.Seed {
		localIns, err = s.fullBlocks(args.Spec, attrs, args.Blocks, schema.Name()+"_fold")
		if err != nil {
			return nil, err
		}
	} else {
		if !s.deltaConsistent() {
			return nil, fmt.Errorf("%w (site %d: fragment mutated outside ApplyDelta)", ErrStaleIncremental, s.id)
		}
		if args.FromGen < s.dlogStart || args.FromGen > s.gen {
			return nil, fmt.Errorf("%w (site %d: fold from generation %d, log covers (%d,%d])",
				ErrStaleIncremental, s.id, args.FromGen, s.dlogStart, s.gen)
		}
		localIns, localDel, _, _, err = s.routeLogSuffix(args.Spec, attrs, args.Blocks, args.FromGen)
		if err != nil {
			return nil, err
		}
	}

	for _, l := range args.Blocks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		states, err := sess.statesFor(l, args)
		if err != nil {
			return nil, err
		}
		depIns := s.takeDeposits(BlockTask(args.Session, l) + "/ins")
		depDel := s.takeDeposits(BlockTask(args.Session, l) + "/del")
		for _, st := range states {
			if err := st.FoldRelation(localIns[l], true); err != nil {
				return nil, err
			}
			if err := st.FoldRelation(localDel[l], false); err != nil {
				return nil, err
			}
			for _, dep := range depIns {
				if err := st.FoldRelation(dep, true); err != nil {
					return nil, err
				}
			}
			for _, dep := range depDel {
				if err := st.FoldRelation(dep, false); err != nil {
					return nil, err
				}
			}
		}
	}

	reply := &FoldReply{ToGen: s.gen, Patterns: make([]*relation.Relation, len(args.CFDs))}
	for ci, c := range args.CFDs {
		pschema, err := schema.Project("viopi_"+c.Name, c.X)
		if err != nil {
			return nil, err
		}
		union := relation.New(pschema)
		seen := map[string]struct{}{}
		for _, l := range args.Blocks {
			if states := sess.states[l]; states != nil {
				states[ci].Patterns(union, seen)
			}
		}
		reply.Patterns[ci] = union
	}
	return reply, nil
}

// foldSessionFor resolves (or, seeding, resets) the named session.
// Callers hold deltaMu; the sessions map has its own lock because
// DropSession must work even while a fold is running elsewhere.
func (s *Site) foldSessionFor(args FoldArgs, ps *relation.Schema) (*foldSession, error) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if args.Seed {
		if len(s.sessions) >= sessionsCap {
			s.sessions = make(map[string]*foldSession)
		}
		sess := &foldSession{
			specFP: args.Spec.Fingerprint(),
			states: make(map[int][]*engine.IncrementalState),
			schema: ps,
		}
		s.sessions[args.Session] = sess
		return sess, nil
	}
	sess, ok := s.sessions[args.Session]
	if !ok {
		return nil, fmt.Errorf("%w (site %d: unknown session %q)", ErrStaleIncremental, s.id, args.Session)
	}
	if sess.specFP != args.Spec.Fingerprint() {
		return nil, fmt.Errorf("%w (site %d: session %q folded a different spec)", ErrStaleIncremental, s.id, args.Session)
	}
	return sess, nil
}

// statesFor returns (creating on first touch) the per-CFD states of
// one block. Blocks born after the seed — empty cluster-wide when the
// session started — begin empty here and receive their entire content
// as deltas, which reconstructs them exactly.
func (sess *foldSession) statesFor(l int, args FoldArgs) ([]*engine.IncrementalState, error) {
	if states := sess.states[l]; states != nil {
		if len(states) != len(args.CFDs) {
			return nil, fmt.Errorf("%w (block %d folded %d CFDs, asked %d)",
				ErrStaleIncremental, l, len(states), len(args.CFDs))
		}
		return states, nil
	}
	states := make([]*engine.IncrementalState, len(args.CFDs))
	for ci, c := range args.CFDs {
		folded := c
		if args.RestrictSingle {
			folded = args.Spec.RestrictCFD(c, l)
		}
		st, err := engine.NewIncrementalState(sess.schema, folded, false)
		if err != nil {
			return nil, err
		}
		states[ci] = st
	}
	sess.states[l] = states
	return states, nil
}

// DropSession implements SiteAPI: release a session's retained states.
func (s *Site) DropSession(session string) error {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	delete(s.sessions, session)
	return nil
}
