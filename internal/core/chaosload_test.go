// Chaos-load tests: the overload-robustness layer under real
// concurrency — admission-controlled sites saturated by parallel
// compiled Detect sessions, a site draining mid-traffic, retry-after
// hints against context deadlines, and the incremental pipeline's
// drain recovery. `make chaos-load` runs this file under the race
// detector with a randomized, logged fault seed.
package core_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"distcfd/internal/core"
	"distcfd/internal/faulty"
	"distcfd/internal/partition"
	"distcfd/internal/relation"
	"distcfd/internal/workload"
)

// loadCluster builds a 3-site cluster over a mid-size Cust workload,
// returning the bare sites for deposit-leak checks alongside whatever
// wrap installed.
func loadCluster(t *testing.T, dataSeed int64, n int, wrap func(i int, s *core.Site) core.SiteAPI) (*core.Cluster, []*core.Site, *partition.Horizontal) {
	t.Helper()
	data := workload.Cust(workload.CustConfig{N: n, Seed: dataSeed, ErrRate: 0.05})
	h, err := partition.Uniform(data, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	bare := make([]*core.Site, h.N())
	sites := make([]core.SiteAPI, h.N())
	for i, frag := range h.Fragments {
		bare[i] = core.NewSite(i, frag, relation.True())
		sites[i] = wrap(i, bare[i])
	}
	cl, err := core.NewCluster(h.Schema, sites)
	if err != nil {
		t.Fatal(err)
	}
	return cl, bare, h
}

// TestChaosLoadConcurrentDetects is the acceptance scenario: 32
// concurrent compiled Detect sessions under FailDegrade against a
// cluster where one site runs a deliberately tiny admission controller
// (real overload rejections under contention) and another is drained
// mid-traffic. Every run must terminate before its deadline with a
// complete result or a correctly-typed partial one, no site may buffer
// a deposit afterwards, and neither the overloaded nor the draining
// site may trip its breaker — both answered every call.
func TestChaosLoadConcurrentDetects(t *testing.T) {
	const runs = 32
	const deadline = 60 * time.Second
	cl, bare, h := loadCluster(t, 11, 900, func(i int, s *core.Site) core.SiteAPI { return s })

	// Site 0: capacity far below 32 concurrent sessions' demand, a
	// near-zero wait budget, and a tiny retry-after hint — saturation
	// turns into typed overloaded rejections, not queueing.
	adm0 := core.WithAdmission(bare[0], core.AdmissionPolicy{
		MaxConcurrent: 2, MaxQueue: 2, MaxWait: 2 * time.Millisecond,
		RetryAfter: 500 * time.Microsecond, DrainTimeout: 2 * time.Second,
	})
	// Site 1: roomy, but drained once traffic is in full flight.
	adm1 := core.WithAdmission(bare[1], core.AdmissionPolicy{
		MaxConcurrent: 64, MaxQueue: 64, MaxWait: 50 * time.Millisecond, DrainTimeout: 2 * time.Second,
	})
	cl.WrapSites(func(i int, s core.SiteAPI) core.SiteAPI {
		switch i {
		case 0:
			return adm0
		case 1:
			return adm1
		}
		return nil
	})

	p, err := core.CompileSet(context.Background(), cl, chaosCFDs(), core.PatDetectS,
		core.Options{Failure: core.FailDegrade, Retry: fastRetry}, true)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	results := make([]*core.SetResult, runs)
	errs := make([]error, runs)
	times := make([]time.Duration, runs)
	for r := 0; r < runs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			start := time.Now()
			results[r], errs[r] = p.Detect(ctx)
			times[r] = time.Since(start)
		}(r)
	}
	// Drain site 1 once the fleet is in flight. Drain errors only when
	// in-flight work outlives DrainTimeout; either way the drain state
	// holds, which is all this test needs.
	time.Sleep(2 * time.Millisecond)
	if err := adm1.Drain(context.Background()); err != nil {
		t.Logf("drain returned %v (drain state holds regardless)", err)
	}
	wg.Wait()

	partials, completes := 0, 0
	for r := 0; r < runs; r++ {
		if errs[r] != nil {
			t.Errorf("run %d failed outright: %v (FailDegrade must always answer)", r, errs[r])
			continue
		}
		if times[r] >= deadline {
			t.Errorf("run %d took %v, at or past its %v deadline", r, times[r], deadline)
		}
		res := results[r]
		if res.Partial {
			partials++
			if len(res.ExcludedSites) == 0 {
				t.Errorf("run %d: Partial with no ExcludedSites", r)
			}
			if res.Coverage <= 0 || res.Coverage >= 1 {
				t.Errorf("run %d: partial Coverage = %v, want (0,1)", r, res.Coverage)
			}
		} else {
			completes++
			if len(res.ExcludedSites) != 0 || res.Coverage != 1 {
				t.Errorf("run %d: complete result with exclusions: %+v", r, res)
			}
		}
	}
	t.Logf("%d complete, %d partial of %d runs", completes, partials, runs)
	if partials == 0 {
		t.Error("no run degraded — the drain mid-traffic never bit")
	}
	assertNoDeposits(t, "chaos-load", bare)

	// Neither saturation nor draining is death: every breaker closed.
	for i, st := range cl.Health() {
		if st != core.BreakerClosed {
			t.Errorf("site %d breaker %v, want closed (overload/drain never feed breakers)", i, st)
		}
	}
	hd := cl.HealthDetail()
	if !hd[1].Draining {
		t.Error("HealthDetail must report site 1 draining")
	}
	if hd[0].Draining || hd[2].Draining {
		t.Errorf("only site 1 is draining: %+v", hd)
	}

	// Resume and verify the cluster serves complete, correct answers
	// again: byte-identical to a clean cluster over the same fragments.
	adm1.Resume()
	clean, err := core.FromHorizontal(h)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.ClustDetect(clean, chaosCFDs(), core.PatDetectS, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	final, err := p.Detect(ctx)
	if err != nil {
		t.Fatalf("post-resume run failed: %v", err)
	}
	if final.Partial {
		t.Errorf("post-resume run still partial: %+v", final.ExcludedSites)
	}
	identicalViolations(t, "post-resume", final, want)
	// Complete runs from the storm must match too — overload retries
	// never bend results.
	for r := 0; r < runs; r++ {
		if errs[r] == nil && !results[r].Partial {
			identicalViolations(t, "complete-under-load", results[r], want)
		}
	}
	assertNoDeposits(t, "chaos-load-final", bare)
}

// TestChaosLoadOverloadEquivalence: injected overload rejections every
// 4th call, with a honored retry-after hint, are fully absorbed by
// FailRetry — violations and figures byte-identical to the fault-free
// run — and never feed the circuit breakers: an overloaded site
// answered, so it must not look dead.
func TestChaosLoadOverloadEquivalence(t *testing.T) {
	base := chaosSeed(t)
	baseline, _ := chaosCluster(t, 5, func(_ int, s *core.Site) core.SiteAPI { return s })
	want, err := core.ClustDetect(baseline, chaosCFDs(), core.PatDetectS, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl, bare := chaosCluster(t, 5, func(i int, s *core.Site) core.SiteAPI {
		return faulty.Wrap(s, faulty.Plan{
			Seed:               base + int64(i),
			OverloadEvery:      4,
			OverloadRetryAfter: 200 * time.Microsecond,
		})
	})
	got, err := core.ClustDetect(cl, chaosCFDs(), core.PatDetectS,
		core.Options{Failure: core.FailRetry, Retry: fastRetry})
	if err != nil {
		t.Fatalf("overloaded run failed: %v", err)
	}
	identicalViolations(t, "overload-equivalence", got, want)
	if got.ShippedTuples != want.ShippedTuples || got.ModeledTime != want.ModeledTime {
		t.Errorf("figures bent under overload: %d/%v vs %d/%v",
			got.ShippedTuples, got.ModeledTime, want.ShippedTuples, want.ModeledTime)
	}
	if got.Faults == 0 || got.Retries == 0 {
		t.Error("the overload injection never bit — the equivalence was vacuous")
	}
	if got.Partial {
		t.Error("FailRetry must never degrade")
	}
	for i, st := range cl.Health() {
		if st != core.BreakerClosed {
			t.Errorf("site %d breaker %v after overload-only faults, want closed", i, st)
		}
	}
	assertNoDeposits(t, "overload-equivalence", bare)
}

// TestChaosLoadRetryAfterBeyondDeadline is the satellite regression: a
// retry-after hint longer than the remaining context budget must fail
// the run fast with DeadlineExceeded — never sleep through (let alone
// past) the deadline honoring a hint that cannot matter anymore.
func TestChaosLoadRetryAfterBeyondDeadline(t *testing.T) {
	cl, _, _ := loadCluster(t, 3, 300, func(_ int, s *core.Site) core.SiteAPI { return s })
	p, err := core.CompileSet(context.Background(), cl, chaosCFDs(), core.PatDetectS,
		core.Options{Failure: core.FailRetry, Retry: fastRetry}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Every work call from here on is rejected overloaded with a 10s
	// hint — far beyond the 300ms run budget.
	cl.WrapSites(func(_ int, s core.SiteAPI) core.SiteAPI {
		return faulty.Wrap(s, faulty.Plan{OverloadEvery: 1, OverloadRetryAfter: 10 * time.Second})
	})
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = p.Detect(ctx)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("a fully overloaded cluster cannot produce a result")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("run took %v: it slept toward a 10s retry-after hint instead of failing fast", elapsed)
	}
}

// TestChaosLoadDrainDegrade: a draining site under FailDegrade is
// rerouted around — the run completes partially over the reachable
// fragments, the drained site is named, its breaker stays closed (it
// answered every call), and no deposits leak. Covered both for a site
// that drains before its first call and one that drains mid-run.
func TestChaosLoadDrainDegrade(t *testing.T) {
	for _, tc := range []struct {
		name       string
		drainAfter int
	}{
		{"drain-from-start", 1},
		{"drain-mid-detect", 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const drained = 2
			cl, bare := chaosCluster(t, 4, func(i int, s *core.Site) core.SiteAPI {
				if i == drained {
					return faulty.Wrap(s, faulty.Plan{DrainAfter: tc.drainAfter})
				}
				return s
			})
			res, err := core.ClustDetect(cl, chaosCFDs(), core.PatDetectS,
				core.Options{Failure: core.FailDegrade, Retry: fastRetry})
			if err != nil {
				t.Fatalf("degraded run failed outright: %v", err)
			}
			if !res.Partial {
				t.Fatal("run against a draining site must report Partial")
			}
			if len(res.ExcludedSites) != 1 || res.ExcludedSites[0] != drained {
				t.Fatalf("ExcludedSites = %v, want [%d]", res.ExcludedSites, drained)
			}
			if res.Faults == 0 {
				t.Error("the drain injection never bit")
			}
			if st := cl.Health()[drained]; st != core.BreakerClosed {
				t.Errorf("draining site's breaker %v, want closed — draining is not death", st)
			}
			assertNoDeposits(t, tc.name, bare)

			// The partial answer equals a clean run over the reachable
			// fragments only.
			data := workload.Cust(workload.CustConfig{N: 1_500, Seed: 4, ErrRate: 0.05})
			h, err := partition.Uniform(data, 3, 1)
			if err != nil {
				t.Fatal(err)
			}
			rh := &partition.Horizontal{Schema: h.Schema, Fragments: h.Fragments[:drained]}
			rcl, err := core.FromHorizontal(rh)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.ClustDetect(rcl, chaosCFDs(), core.PatDetectS, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for ci := range want.PerCFD {
				if !samePatternSet(res.PerCFD[ci], want.PerCFD[ci]) {
					t.Errorf("cfd %d: degraded patterns differ from the reachable-only run\n got  %v\n want %v",
						ci, res.PerCFD[ci], want.PerCFD[ci])
				}
			}
		})
	}
}

// TestChaosLoadDrainDuringIncremental is the stale-watermark
// regression: a site draining between incremental rounds fails the
// round (incremental serving never excludes sites), and after Resume
// the next round transparently reseeds — its violations and figures
// byte-identical to a fresh full Detect over the same data, never a
// stale-watermark answer.
func TestChaosLoadDrainDuringIncremental(t *testing.T) {
	ctx := context.Background()
	cl, bare, _ := loadCluster(t, 12, 900, func(i int, s *core.Site) core.SiteAPI { return s })
	adms := make([]*core.Admission, cl.N())
	cl.WrapSites(func(i int, s core.SiteAPI) core.SiteAPI {
		adms[i] = core.WithAdmission(s, core.AdmissionPolicy{DrainTimeout: 2 * time.Second})
		return adms[i]
	})
	p, err := core.CompileSet(ctx, cl, chaosCFDs(), core.PatDetectS,
		core.Options{Failure: core.FailRetry, Retry: fastRetry}, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Detect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := p.DetectIncremental(ctx); err != nil {
		t.Fatalf("seeding incremental round failed: %v", err)
	}

	// Drain a site, then serve a delta round against it: the round must
	// fail typed — retried reseeds keep hitting the draining site — and
	// must not commit a watermark.
	if err := adms[1].Drain(ctx); err != nil {
		t.Fatal(err)
	}
	src := bare[0].Fragment().Tuple(3)
	delta := relation.Delta{Deletes: []int{1}, Inserts: []relation.Tuple{append(relation.Tuple(nil), src...)}}
	_, err = p.DetectDelta(ctx, map[int]relation.Delta{0: delta})
	if err == nil {
		t.Fatal("an incremental round against a draining site must fail (incremental never excludes)")
	}
	if core.ErrCodeOf(err) != core.CodeDraining {
		t.Fatalf("round failed with %v, want the typed draining error", err)
	}
	assertNoDeposits(t, "drained-incremental", bare)

	// Resume and run the next incremental round: it reseeds and serves
	// the applied delta — byte-identical to a fresh full Detect.
	adms[1].Resume()
	inc, err := p.DetectIncremental(ctx)
	if err != nil {
		t.Fatalf("post-resume incremental failed: %v", err)
	}
	want, err := p.Detect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	identicalViolations(t, "post-resume-incremental", inc, want)
	if inc.ShippedTuples != want.ShippedTuples || inc.ModeledTime != want.ModeledTime {
		t.Errorf("post-resume incremental figures bent: %d/%v vs %d/%v",
			inc.ShippedTuples, inc.ModeledTime, want.ShippedTuples, want.ModeledTime)
	}
	if inc.Partial {
		t.Error("incremental serving must never report Partial")
	}
	assertNoDeposits(t, "post-resume-incremental", bare)
}
