package core

import (
	"math/rand"
	"testing"

	"distcfd/internal/cfd"
	"distcfd/internal/partition"
)

func TestClusterByLHS(t *testing.T) {
	a := cfd.MustParse(`a: [CC, zip] -> [street]`)
	b := cfd.MustParse(`b: [CC] -> [city]`)          // X ⊂ a.X → merge
	c := cfd.MustParse(`c: [AC, phn] -> [street]`)   // unrelated
	d := cfd.MustParse(`d: [CC, zip, AC] -> [city]`) // ⊇ a and b
	clusters := clusterByLHS([]*cfd.CFD{a, b, c, d})
	if len(clusters) != 2 {
		t.Fatalf("clusters = %v, want 2", clusters)
	}
	if len(clusters[0]) != 3 || len(clusters[1]) != 1 {
		t.Errorf("clusters = %v", clusters)
	}
}

func TestSharedLHSAndProjectedSpec(t *testing.T) {
	a := cfd.MustParse(`a: [CC, zip] -> [street] : (44, _ || _), (31, _ || _)`)
	b := cfd.MustParse(`b: [CC] -> [city] : (01 || _)`)
	w := sharedLHS([]*cfd.CFD{a, b})
	if len(w) != 1 || w[0] != "CC" {
		t.Fatalf("W = %v, want [CC]", w)
	}
	spec, err := projectedSpec(w, []*cfd.CFD{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// Projections: (44), (31), (01) — three distinct constants.
	if spec.K() != 3 {
		t.Errorf("projected spec K = %d, patterns %v", spec.K(), spec.Patterns)
	}
}

func TestSeqAndClustAgreeWithOracle(t *testing.T) {
	cl := fig1bCluster(t)
	cfds := []*cfd.CFD{phi1, phi2, phi3}

	seq, err := SeqDetect(cl, cfds, PatDetectS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	clu, err := ClustDetect(cl, cfds, PatDetectS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// φ1 and φ3 share LHS prefix CC? X(φ1)={CC,zip}, X(φ3)={CC,AC}:
	// no containment; φ2 X={CC,title}: no containment either. So the
	// Fig.1 rules don't cluster — results must still match.
	wantPatterns(t, "seq phi1", seq.PerCFD[0], "44\x1fEH4 8LE", "31\x1f1012 WR")
	wantPatterns(t, "clust phi1", clu.PerCFD[0], "44\x1fEH4 8LE", "31\x1f1012 WR")
	if seq.PerCFD[1].Len() != 0 || clu.PerCFD[1].Len() != 0 {
		t.Error("phi2 should have no violations")
	}
	wantPatterns(t, "seq phi3", seq.PerCFD[2], "44\x1f131", "01\x1f908")
	wantPatterns(t, "clust phi3", clu.PerCFD[2], "44\x1f131", "01\x1f908")
}

// overlappingCFDs returns a pair with LHS containment, the Exp-5 setup.
func overlappingCFDs() []*cfd.CFD {
	c1 := cfd.MustParse(`c1: [CC, zip] -> [street] : (44, _ || _), (31, _ || _)`)
	c2 := cfd.MustParse(`c2: [CC] -> [AC] : (44 || _), (01 || _), (31 || _)`)
	return []*cfd.CFD{c1, c2}
}

func TestClustDetectClustersOverlappingCFDs(t *testing.T) {
	cl := fig1bCluster(t)
	cfds := overlappingCFDs()
	res, err := ClustDetect(cl, cfds, PatDetectS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 || len(res.Clusters[0]) != 2 {
		t.Fatalf("clusters = %v, want one cluster of both", res.Clusters)
	}
}

// TestClustShipsNoMoreThanSeq: for overlapping CFDs, ClustDetect ships
// each tuple once per cluster instead of once per CFD.
func TestClustShipsNoMoreThanSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cfds := []*cfd.CFD{
		cfd.MustParse(`m1: [a, b] -> [c]`),
		cfd.MustParse(`m2: [a] -> [d] : (a0 || _), (a1 || _), (a2 || _)`),
	}
	for trial := 0; trial < 10; trial++ {
		d := randomRelation(rng, 100)
		h, err := partition.Uniform(d, 4, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		cl, err := FromHorizontal(h)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := SeqDetect(cl, cfds, PatDetectS, Options{})
		if err != nil {
			t.Fatal(err)
		}
		clu, err := ClustDetect(cl, cfds, PatDetectS, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if clu.ShippedTuples > seq.ShippedTuples {
			t.Errorf("trial %d: clust shipped %d > seq %d", trial,
				clu.ShippedTuples, seq.ShippedTuples)
		}
		// And both agree with the oracle.
		for ci, c := range cfds {
			vio, err := cfd.NaiveViolations(d, c)
			if err != nil {
				t.Fatal(err)
			}
			want := oraclePatterns(t, d, c, vio)
			if !sameSet(patternsOf(seq.PerCFD[ci]), want) {
				t.Errorf("trial %d: seq cfd %d mismatch", trial, ci)
			}
			if !sameSet(patternsOf(clu.PerCFD[ci]), want) {
				t.Errorf("trial %d: clust cfd %d mismatch:\n got %v\nwant %v",
					trial, ci, keys(patternsOf(clu.PerCFD[ci])), keys(want))
			}
		}
	}
}

// TestClustRandomizedOracle drives ClustDetect across random CFD sets,
// including non-clusterable mixes.
func TestClustRandomizedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		d := randomRelation(rng, 60)
		var cfds []*cfd.CFD
		for i := 0; i < 2+rng.Intn(3); i++ {
			c := randomTestCFD(rng)
			c.Name = c.Name + itoa(i)
			cfds = append(cfds, c)
		}
		h, err := partition.Uniform(d, 3, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		cl, err := FromHorizontal(h)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []Algorithm{PatDetectS, PatDetectRT} {
			clu, err := ClustDetect(cl, cfds, algo, Options{})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			for ci, c := range cfds {
				vio, err := cfd.NaiveViolations(d, c)
				if err != nil {
					t.Fatal(err)
				}
				want := oraclePatterns(t, d, c, vio)
				if !sameSet(patternsOf(clu.PerCFD[ci]), want) {
					t.Fatalf("trial %d algo %v cfd %d (%v):\n got %v\nwant %v",
						trial, algo, ci, c, keys(patternsOf(clu.PerCFD[ci])), keys(want))
				}
			}
		}
	}
}

func TestSeqDetectEmptyInput(t *testing.T) {
	cl := fig1bCluster(t)
	if _, err := SeqDetect(cl, nil, PatDetectS, Options{}); err == nil {
		t.Error("expected error for empty CFD set")
	}
	if _, err := ClustDetect(cl, nil, PatDetectS, Options{}); err == nil {
		t.Error("expected error for empty CFD set")
	}
}

func TestSetResultBookkeeping(t *testing.T) {
	cl := fig1bCluster(t)
	cfds := overlappingCFDs()
	for _, run := range []func() (*SetResult, error){
		func() (*SetResult, error) { return SeqDetect(cl, cfds, PatDetectRT, Options{}) },
		func() (*SetResult, error) { return ClustDetect(cl, cfds, PatDetectRT, Options{}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if res.ModeledTime <= 0 || res.WallTime <= 0 {
			t.Error("times should be positive")
		}
		if res.ShippedTuples != res.Metrics.TotalTuples() {
			t.Error("shipped tuples mismatch with metrics")
		}
		if len(res.PerCFD) != len(cfds) {
			t.Errorf("PerCFD = %d, want %d", len(res.PerCFD), len(cfds))
		}
	}
}
