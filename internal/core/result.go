package core

import (
	"fmt"
	"runtime"
	"time"

	"distcfd/internal/cfd"
	"distcfd/internal/dist"
	"distcfd/internal/relation"
)

// Algorithm selects a single-CFD detection algorithm of Section IV-B.
type Algorithm int

const (
	// CTRDetect ships all relevant tuples to one coordinator chosen by
	// total matching count (the central/naive approach).
	CTRDetect Algorithm = iota
	// PatDetectS designates a coordinator per pattern tuple, minimizing
	// total data shipment.
	PatDetectS
	// PatDetectRT designates a coordinator per pattern tuple with the
	// greedy response-time heuristic.
	PatDetectRT
)

func (a Algorithm) String() string {
	switch a {
	case CTRDetect:
		return "CTRDetect"
	case PatDetectS:
		return "PatDetectS"
	case PatDetectRT:
		return "PatDetectRT"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options tune a detection run.
type Options struct {
	// Cost is the response-time model; the zero value selects
	// dist.DefaultCostModel().
	Cost dist.CostModel
	// MineTheta, when positive, enables the Section IV-B mining
	// preprocessing for CFDs whose variable patterns are all-wildcard
	// (traditional FDs): each site mines closed frequent LHS patterns
	// with support ≥ MineTheta·|Di|, and σ partitions on the merged
	// patterns plus a catch-all wildcard row.
	MineTheta float64
	// Workers is the run's total worker budget; 0 selects
	// runtime.GOMAXPROCS(0). Plan.Detect splits it between cluster-
	// level overlap (up to one worker per independent CFD cluster) and
	// intra-unit row sharding inside the detection kernel, so a single
	// merged cluster still uses the whole budget (see splitWorkers).
	// SeqDetect and ClustDetect pin it to 1 (strictly serial).
	Workers int
	// Sigma selects the compile-time Σ analysis level: SigmaOff (the
	// zero value) compiles the rule set as given; SigmaCheck fails
	// compilation fast on an inconsistent Σ with a witness-bearing
	// error; SigmaPrune additionally collapses duplicate CFDs into one
	// compiled unit with equivalence-pinned accounting.
	Sigma SigmaMode
	// Failure selects how the run responds to site failures: FailFast
	// (the zero value) aborts on the first error, FailRetry absorbs
	// transient failures with bounded retries, FailDegrade additionally
	// completes over the reachable fragments (see FailurePolicy).
	Failure FailurePolicy
	// Retry bounds retry/backoff under FailRetry and FailDegrade; zero
	// fields select defaults.
	Retry RetryPolicy
	// NoPackedShip disables the wire v6 packed shipping form: extracted
	// batches drop any attached packed payload before shipping, so they
	// travel (and are billed by dist.RelationBytes) in the v5 dict+ID
	// columnar form. Violations, ShippedTuples, and ModeledTime are
	// byte-identical either way — packing changes only the byte
	// accounting and the wire encoding — which the equivalence tests pin.
	NoPackedShip bool
	// DeltaFallbackRatio bounds incremental serving: when the deletes
	// accumulated since the last full fold exceed this fraction of the
	// current instance size, DetectIncremental falls back to a full
	// reseed (retained group states shrink by tombstoned counts, but a
	// mostly-rewritten instance is cheaper to rebuild than to fold).
	// 0 selects the default of 0.5.
	DeltaFallbackRatio float64
}

func (o Options) withDefaults() Options {
	if o.Cost == (dist.CostModel{}) {
		o.Cost = dist.DefaultCostModel()
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.DeltaFallbackRatio <= 0 {
		o.DeltaFallbackRatio = 0.5
	}
	return o
}

// SingleResult reports one single-CFD detection run.
type SingleResult struct {
	// CFD is the dependency checked.
	CFD *cfd.CFD
	// Algorithm that produced this result.
	Algorithm Algorithm
	// Patterns is Vioπ(φ,D) as distinct X-tuples.
	Patterns *relation.Relation
	// Vio is Vioπ(φ,D) padded to the full schema R (Section II-C).
	Vio *relation.Relation
	// Spec is the σ-partitioning used for the variable part (nil when
	// the CFD is constant-only and was checked locally).
	Spec *BlockSpec
	// Coordinators holds the coordinator site per block (-1 = empty
	// block, no coordinator needed). For CTRDetect all entries agree.
	Coordinators []int
	// Metrics records every shipment of the run.
	Metrics *dist.Metrics
	// ShippedTuples is |M|, the total tuple shipments.
	ShippedTuples int64
	// CheckSizes[i] = |D'_i| = |Di| + tuples received by site i.
	CheckSizes []int
	// ModeledTime is cost(D, Σ, M) under Options.Cost.
	ModeledTime float64
	// WallTime is the measured wall-clock of the in-process run.
	WallTime time.Duration
	// LocalOnly reports that no shipment was needed (Proposition 5
	// and/or Fi ∧ Fφ pruning).
	LocalOnly bool
	// MinedPatterns counts pattern tuples contributed by the mining
	// preprocessing (0 when mining was off or not applicable).
	MinedPatterns int
	// Incremental reports that the run served from retained delta
	// state: Metrics/ShippedTuples/ModeledTime then hold the modeled
	// full-recompute equivalent (byte-identical to a fresh Detect on
	// the same data), while DeltaShippedTuples/DeltaShippedBytes count
	// what actually crossed the wire.
	Incremental        bool
	DeltaShippedTuples int64
	DeltaShippedBytes  int64
	// Partial marks a degraded run: one or more sites stayed down after
	// retries and were excluded, so the result covers only the
	// reachable fragments. Every reported violation is still a true
	// violation of the reachable data.
	Partial bool
	// ExcludedSites lists the excluded sites (nil when complete).
	ExcludedSites []int
	// Coverage is the fraction of tuples the run examined: 1 on a
	// complete run, reachable/total on a degraded one.
	Coverage float64
	// Retries / Faults total the fault channel: retried site calls and
	// failed attempts. Zero on fault-free runs; under FailRetry, every
	// other field is byte-identical to a fault-free run's.
	Retries int64
	Faults  int64
}

// SetResult reports a multi-CFD detection run (SeqDetect/ClustDetect).
type SetResult struct {
	// CFDs are the dependencies checked.
	CFDs []*cfd.CFD
	// PerCFD holds Vioπ per CFD as distinct X-tuples, aligned with CFDs.
	PerCFD []*relation.Relation
	// Metrics aggregates all shipments of the run.
	Metrics *dist.Metrics
	// ShippedTuples is the total |M| across all CFDs.
	ShippedTuples int64
	// ModeledTime sums the per-phase modeled response times.
	ModeledTime float64
	// WallTime is the measured wall-clock of the whole run.
	WallTime time.Duration
	// Clusters lists, for ClustDetect, the CFD index groups processed
	// together; for SeqDetect each CFD is its own cluster.
	Clusters [][]int
	// Incremental marks a run served from retained delta state; see
	// SingleResult.Incremental for the accounting contract.
	Incremental        bool
	DeltaShippedTuples int64
	DeltaShippedBytes  int64
	// Partial / ExcludedSites / Coverage / Retries / Faults carry the
	// degraded-result contract; see the SingleResult fields.
	Partial       bool
	ExcludedSites []int
	Coverage      float64
	Retries       int64
	Faults        int64
}

// padPatterns converts an X-tuple pattern relation into the Vioπ form:
// an instance of the full schema with nulls outside X.
func padPatterns(schema *relation.Schema, x []string, pats *relation.Relation) (*relation.Relation, error) {
	xi, err := schema.Indices(x)
	if err != nil {
		return nil, err
	}
	out := relation.New(schema)
	for _, t := range pats.Tuples() {
		row := make(relation.Tuple, schema.Arity())
		for j := range row {
			row[j] = relation.Null
		}
		for j, col := range xi {
			row[col] = t[j]
		}
		out.MustAppend(row)
	}
	return out, nil
}

// mergeDistinct unions X-tuple relations into a fresh relation with
// the given schema, dropping duplicates, preserving first-seen order.
func mergeDistinct(schema *relation.Schema, parts []*relation.Relation) *relation.Relation {
	out := relation.New(schema)
	seen := map[string]struct{}{}
	var all []int
	for _, p := range parts {
		if p == nil {
			continue
		}
		if all == nil {
			all = make([]int, schema.Arity())
			for i := range all {
				all[i] = i
			}
		}
		for _, t := range p.Tuples() {
			k := t.Key(all)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out.MustAppend(t)
		}
	}
	return out
}
