package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"distcfd/internal/cfd"
	"distcfd/internal/partition"
	"distcfd/internal/relation"
	"distcfd/internal/workload"
)

// The incremental-equivalence property: after ANY sequence of deltas,
// DetectIncremental's violation output, ShippedTuples, and ModeledTime
// are byte-identical to (a) a fresh Detect on the same compiled plan
// over the mutated cluster and (b) a Detect over a virgin cluster
// rebuilt from the mutated fragments with no caches or retained state
// at all — leg (b) is the oracle that would catch maintained caches
// and incremental folds drifting together.

// cloneCluster rebuilds the cluster from deep copies of its current
// fragments: fresh sites, fresh caches, no sessions.
func cloneCluster(t *testing.T, cl *Cluster) *Cluster {
	t.Helper()
	sites := make([]SiteAPI, cl.N())
	for i := 0; i < cl.N(); i++ {
		base, ok := cl.Site(i).(interface{ Fragment() *relation.Relation })
		if !ok {
			t.Fatalf("site %d does not expose its fragment", i)
		}
		sites[i] = NewSite(i, base.Fragment().Clone(), cl.Predicates()[i])
	}
	virgin, err := NewCluster(cl.Schema(), sites)
	if err != nil {
		t.Fatal(err)
	}
	return virgin
}

func assertSingleEquiv(t *testing.T, label string, inc, fresh, virgin *SingleResult) {
	t.Helper()
	if !inc.Incremental {
		t.Fatalf("%s: incremental run not marked Incremental", label)
	}
	if got, want := inc.Patterns.String(), fresh.Patterns.String(); got != want {
		t.Fatalf("%s: incremental patterns diverge from fresh plan Detect:\nincremental:\n%s\nfresh:\n%s", label, got, want)
	}
	if got, want := inc.Patterns.String(), virgin.Patterns.String(); got != want {
		t.Fatalf("%s: incremental patterns diverge from virgin cluster:\nincremental:\n%s\nvirgin:\n%s", label, got, want)
	}
	if inc.ShippedTuples != fresh.ShippedTuples || inc.ShippedTuples != virgin.ShippedTuples {
		t.Fatalf("%s: ShippedTuples inc=%d fresh=%d virgin=%d",
			label, inc.ShippedTuples, fresh.ShippedTuples, virgin.ShippedTuples)
	}
	if inc.ModeledTime != fresh.ModeledTime || inc.ModeledTime != virgin.ModeledTime {
		t.Fatalf("%s: ModeledTime inc=%v fresh=%v virgin=%v",
			label, inc.ModeledTime, fresh.ModeledTime, virgin.ModeledTime)
	}
	if got, want := inc.Vio.String(), fresh.Vio.String(); got != want {
		t.Fatalf("%s: Vio diverges:\n%s\nvs\n%s", label, got, want)
	}
}

func assertSetEquiv(t *testing.T, label string, inc, fresh, virgin *SetResult) {
	t.Helper()
	if !inc.Incremental {
		t.Fatalf("%s: incremental run not marked Incremental", label)
	}
	for i := range inc.PerCFD {
		if got, want := inc.PerCFD[i].String(), fresh.PerCFD[i].String(); got != want {
			t.Fatalf("%s: cfd %d patterns diverge from fresh:\n%s\nvs\n%s", label, i, got, want)
		}
		if got, want := inc.PerCFD[i].String(), virgin.PerCFD[i].String(); got != want {
			t.Fatalf("%s: cfd %d patterns diverge from virgin:\n%s\nvs\n%s", label, i, got, want)
		}
	}
	if inc.ShippedTuples != fresh.ShippedTuples || inc.ShippedTuples != virgin.ShippedTuples {
		t.Fatalf("%s: ShippedTuples inc=%d fresh=%d virgin=%d",
			label, inc.ShippedTuples, fresh.ShippedTuples, virgin.ShippedTuples)
	}
	if inc.ModeledTime != fresh.ModeledTime || inc.ModeledTime != virgin.ModeledTime {
		t.Fatalf("%s: ModeledTime inc=%v fresh=%v virgin=%v",
			label, inc.ModeledTime, fresh.ModeledTime, virgin.ModeledTime)
	}
}

// empPools are small attribute domains so random EMP traffic keeps
// creating and resolving violations of phi1/phi2/phi3.
var empPools = map[string][]string{
	"title":  {"MTS", "DMTS", "VP"},
	"CC":     {"44", "01", "31"},
	"AC":     {"131", "908", "20", "10"},
	"street": {"Mayfield", "Crichton", "Mtn Ave", "Spuistraat"},
	"city":   {"EDI", "NYC", "MH", "AMS", "ROT"},
	"zip":    {"EH4 8LE", "EH2 4HF", "07974", "1012 WR"},
	"salary": {"75k", "95k", "110k"},
}

func randomEMPTuple(rng *rand.Rand, id int) relation.Tuple {
	pick := func(a string) string { p := empPools[a]; return p[rng.Intn(len(p))] }
	return relation.Tuple{
		fmt.Sprintf("n%d", id),
		fmt.Sprintf("name%d", rng.Intn(40)),
		pick("title"),
		pick("CC"),
		pick("AC"),
		fmt.Sprintf("%07d", rng.Intn(100)),
		pick("street"),
		pick("city"),
		pick("zip"),
		pick("salary"),
	}
}

// randomEMPDeltas builds one delta per site. With routeByTitle (the
// Fig. 1(b) predicate partitioning), inserts land at the site whose
// predicate they satisfy, keeping Di = σFi(D) an invariant the pruning
// logic relies on.
func randomEMPDeltas(rng *rand.Rand, cl *Cluster, routeByTitle bool, idSeq *int) map[int]relation.Delta {
	titleSite := map[string]int{"MTS": 0, "DMTS": 1, "VP": 2}
	deltas := make(map[int]relation.Delta)
	for i := 0; i < cl.N(); i++ {
		var d relation.Delta
		frag := cl.Site(i).(interface{ Fragment() *relation.Relation }).Fragment()
		if n := frag.Len(); n > 0 && rng.Intn(2) == 0 {
			d.Deletes = append(d.Deletes, rng.Intn(n))
		}
		deltas[i] = d
	}
	for k := 2 + rng.Intn(3); k > 0; k-- {
		*idSeq++
		t := randomEMPTuple(rng, *idSeq)
		site := rng.Intn(cl.N())
		if routeByTitle {
			site = titleSite[t[2]]
		}
		d := deltas[site]
		d.Inserts = append(d.Inserts, t)
		deltas[site] = d
	}
	return deltas
}

func TestSingleIncrementalEquivalenceEMP(t *testing.T) {
	ctx := context.Background()
	rules := map[string]*cfd.CFD{"phi1": phi1, "phi2": phi2, "phi3": phi3}
	for _, algo := range []Algorithm{CTRDetect, PatDetectS, PatDetectRT} {
		for name, rule := range rules {
			for _, part := range []string{"fig1b", "uniform4"} {
				label := fmt.Sprintf("%v/%s/%s", algo, name, part)
				t.Run(label, func(t *testing.T) {
					var cl *Cluster
					routed := part == "fig1b"
					if routed {
						cl = fig1bCluster(t)
					} else {
						cl = uniformCluster(t, 4, 11)
					}
					sp, err := CompileSingle(ctx, cl, rule, algo, Options{})
					if err != nil {
						t.Fatal(err)
					}
					rng := rand.New(rand.NewSource(42))
					idSeq := 100
					for step := 0; step < 8; step++ {
						inc, err := sp.DetectDelta(ctx, randomEMPDeltas(rng, cl, routed, &idSeq))
						if err != nil {
							t.Fatalf("step %d: %v", step, err)
						}
						fresh, err := sp.Detect(ctx)
						if err != nil {
							t.Fatal(err)
						}
						vsp, err := CompileSingle(ctx, cloneCluster(t, cl), rule, algo, Options{})
						if err != nil {
							t.Fatal(err)
						}
						virgin, err := vsp.Detect(ctx)
						if err != nil {
							t.Fatal(err)
						}
						assertSingleEquiv(t, fmt.Sprintf("%s step %d", label, step), inc, fresh, virgin)
					}
				})
			}
		}
	}
}

// TestSetIncrementalEquivalenceEMP exercises the multi-CFD path with a
// genuinely merged cluster: [CC] is contained in every other LHS, so
// clusterByLHS folds all four rules into one shared-σ unit.
func TestSetIncrementalEquivalenceEMP(t *testing.T) {
	ctx := context.Background()
	cfds := []*cfd.CFD{
		phi1, phi2, phi3,
		cfd.MustParse(`phi4: [CC] -> [city] : (01 || _)`),
	}
	for _, clustered := range []bool{true, false} {
		t.Run(fmt.Sprintf("clustered=%v", clustered), func(t *testing.T) {
			cl := uniformCluster(t, 3, 5)
			p, err := CompileSet(ctx, cl, cfds, PatDetectRT, Options{}, clustered)
			if err != nil {
				t.Fatal(err)
			}
			if clustered && len(p.Clusters()) >= len(cfds) {
				t.Fatalf("fixture did not merge any clusters: %v", p.Clusters())
			}
			rng := rand.New(rand.NewSource(9))
			idSeq := 500
			for step := 0; step < 8; step++ {
				inc, err := p.DetectDelta(ctx, randomEMPDeltas(rng, cl, false, &idSeq))
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				fresh, err := p.Detect(ctx)
				if err != nil {
					t.Fatal(err)
				}
				vp, err := CompileSet(ctx, cloneCluster(t, cl), cfds, PatDetectRT, Options{}, clustered)
				if err != nil {
					t.Fatal(err)
				}
				virgin, err := vp.Detect(ctx)
				if err != nil {
					t.Fatal(err)
				}
				assertSetEquiv(t, fmt.Sprintf("step %d", step), inc, fresh, virgin)
			}
		})
	}
}

// TestIncrementalEquivalenceWorkloads runs the randomized property on
// the paper's generated datasets (CUST and XREF, overlapping rule
// pairs, ≥2 partitionings each) with the shared delta streams.
func TestIncrementalEquivalenceWorkloads(t *testing.T) {
	ctx := context.Background()
	type wl struct {
		name   string
		data   *relation.Relation
		cfds   []*cfd.CFD
		stream func(*relation.Relation, workload.DeltaConfig) *workload.DeltaStream
	}
	wls := []wl{
		{
			name: "cust",
			data: workload.Cust(workload.CustConfig{N: 1500, Seed: 3, ErrRate: 0.03}),
			cfds: []*cfd.CFD{workload.CustPatternCFD(24), workload.CustStreetCFD()},
			stream: func(f *relation.Relation, c workload.DeltaConfig) *workload.DeltaStream {
				return workload.CustDeltaStream(f, c)
			},
		},
		{
			name: "xref",
			data: workload.XRef(workload.XRefConfig{N: 1500, Seed: 4, ErrRate: 0.03}),
			cfds: []*cfd.CFD{workload.XRefCFD(), workload.XRefCFD2()},
			stream: func(f *relation.Relation, c workload.DeltaConfig) *workload.DeltaStream {
				return workload.XRefDeltaStream(f, c)
			},
		},
	}
	for _, w := range wls {
		for _, sitesN := range []int{3, 5} {
			t.Run(fmt.Sprintf("%s/%dsites", w.name, sitesN), func(t *testing.T) {
				h, err := partition.Uniform(w.data.Clone(), sitesN, int64(sitesN))
				if err != nil {
					t.Fatal(err)
				}
				cl, err := FromHorizontal(h)
				if err != nil {
					t.Fatal(err)
				}
				p, err := CompileSet(ctx, cl, w.cfds, PatDetectRT, Options{}, true)
				if err != nil {
					t.Fatal(err)
				}
				streams := workload.SplitStreams(h.Fragments,
					workload.DeltaConfig{Seed: 77, Inserts: 5, Updates: 3, Deletes: 2, ErrRate: 0.1}, w.stream)
				for step := 0; step < 4; step++ {
					deltas := make(map[int]relation.Delta, len(streams))
					for i, ds := range streams {
						deltas[i] = ds.Next()
					}
					inc, err := p.DetectDelta(ctx, deltas)
					if err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					fresh, err := p.Detect(ctx)
					if err != nil {
						t.Fatal(err)
					}
					vp, err := CompileSet(ctx, cloneCluster(t, cl), w.cfds, PatDetectRT, Options{}, true)
					if err != nil {
						t.Fatal(err)
					}
					virgin, err := vp.Detect(ctx)
					if err != nil {
						t.Fatal(err)
					}
					assertSetEquiv(t, fmt.Sprintf("%s step %d", w.name, step), inc, fresh, virgin)
					if step > 0 && inc.ShippedTuples > 0 && inc.DeltaShippedTuples >= inc.ShippedTuples {
						t.Fatalf("step %d: delta channel (%d) shipped no less than full recompute (%d)",
							step, inc.DeltaShippedTuples, inc.ShippedTuples)
					}
				}
			})
		}
	}
}

// TestIncrementalShipsLessAt1Percent pins the acceptance floor: at
// |ΔD|/|D| = 1%, the incremental round ships ≥5× fewer tuples than the
// full recompute it replaces, while reporting identical results.
func TestIncrementalShipsLessAt1Percent(t *testing.T) {
	ctx := context.Background()
	data := workload.Cust(workload.CustConfig{N: 8000, Seed: 12, ErrRate: 0.02})
	h, err := partition.Uniform(data, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := FromHorizontal(h)
	if err != nil {
		t.Fatal(err)
	}
	p, err := CompileSet(ctx, cl, []*cfd.CFD{workload.CustPatternCFD(128), workload.CustStreetCFD()},
		PatDetectRT, Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1 seeds (ships everything once).
	if _, err := p.DetectIncremental(ctx); err != nil {
		t.Fatal(err)
	}
	// One 1% delta round.
	perSite := data.Len() / 100 / cl.N()
	streams := workload.SplitStreams(h.Fragments,
		workload.DeltaConfig{Seed: 5, Inserts: perSite / 2, Updates: perSite / 4, Deletes: perSite / 4, ErrRate: 0.1},
		func(f *relation.Relation, c workload.DeltaConfig) *workload.DeltaStream {
			return workload.CustDeltaStream(f, c)
		})
	deltas := make(map[int]relation.Delta, len(streams))
	for i, ds := range streams {
		deltas[i] = ds.Next()
	}
	inc, err := p.DetectDelta(ctx, deltas)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := p.Detect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if inc.ShippedTuples != fresh.ShippedTuples {
		t.Fatalf("equivalent accounting diverged: inc %d vs fresh %d", inc.ShippedTuples, fresh.ShippedTuples)
	}
	if inc.DeltaShippedTuples*5 > inc.ShippedTuples {
		t.Fatalf("1%% delta shipped %d tuples, full recompute ships %d — less than the 5× floor",
			inc.DeltaShippedTuples, inc.ShippedTuples)
	}
	// Non-vacuousness: the workload genuinely violates, and both modes
	// report the identical non-empty pattern sets.
	total := 0
	for i := range inc.PerCFD {
		if inc.PerCFD[i].String() != fresh.PerCFD[i].String() {
			t.Fatalf("cfd %d patterns diverge", i)
		}
		total += inc.PerCFD[i].Len()
	}
	if total == 0 {
		t.Fatal("fixture produced no violations — the equivalence assertions are vacuous")
	}
}

// TestIncrementalFallbacks drives the reseed paths: a fragment mutated
// behind the delta log (stale), a delete-heavy history (ratio), and a
// delta log trimmed past the watermark — each must transparently fall
// back to a full fold and keep the equivalence.
func TestIncrementalFallbacks(t *testing.T) {
	ctx := context.Background()
	check := func(t *testing.T, cl *Cluster, sp *SinglePlan) {
		t.Helper()
		inc, err := sp.DetectIncremental(ctx)
		if err != nil {
			t.Fatal(err)
		}
		vsp, err := CompileSingle(ctx, cloneCluster(t, cl), sp.CFD(), PatDetectS, Options{})
		if err != nil {
			t.Fatal(err)
		}
		virgin, err := vsp.Detect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := sp.Detect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		assertSingleEquiv(t, "fallback", inc, fresh, virgin)
	}

	t.Run("foreign-mutation", func(t *testing.T) {
		cl := uniformCluster(t, 3, 7)
		sp, err := CompileSingle(ctx, cl, phi1, PatDetectS, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sp.DetectIncremental(ctx); err != nil {
			t.Fatal(err)
		}
		// Mutate a fragment directly — invisible to the delta log.
		cl.Site(1).(*Site).Fragment().MustAppend(relation.Tuple{
			"f1", "x", "MTS", "44", "131", "0000000", "Mayfield", "NYC", "EH2 4HF", "80k"})
		check(t, cl, sp)
	})

	// Two sessions share the cluster; one reseeds over the foreign
	// mutation first. The re-anchor must fence the OTHER session's
	// watermarks out too (generation bump + log trim + session drop) —
	// without the fence the second session folds an empty log suffix
	// and silently serves pre-mutation violations.
	t.Run("foreign-mutation-second-session", func(t *testing.T) {
		cl := uniformCluster(t, 3, 7)
		spA, err := CompileSingle(ctx, cl, phi1, PatDetectS, Options{})
		if err != nil {
			t.Fatal(err)
		}
		spB, err := CompileSingle(ctx, cl, phi1, PatDetectS, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := spA.DetectIncremental(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := spB.DetectIncremental(ctx); err != nil {
			t.Fatal(err)
		}
		// A violating partner for Sam's (44, EH2 4HF) zip, added behind
		// the delta log's back.
		cl.Site(1).(*Site).Fragment().MustAppend(relation.Tuple{
			"f2", "y", "DMTS", "44", "131", "0000001", "NotPrincess", "EDI", "EH2 4HF", "95k"})
		// Session A reseeds over the mutation...
		check(t, cl, spA)
		// ...and session B must not be left serving the pre-mutation
		// world: its next round has to reseed too and agree with fresh.
		check(t, cl, spB)
	})

	// The log must also fence when a foreign mutation is followed by a
	// regular ApplyDelta: without the fence the apply re-anchors the
	// log over the mutation and later rounds silently miss the appended
	// tuple (they fold only the log suffix).
	t.Run("foreign-mutation-then-applydelta", func(t *testing.T) {
		cl := uniformCluster(t, 3, 7)
		sp, err := CompileSingle(ctx, cl, phi1, PatDetectS, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sp.DetectIncremental(ctx); err != nil {
			t.Fatal(err)
		}
		cl.Site(1).(*Site).Fragment().MustAppend(relation.Tuple{
			"f3", "z", "DMTS", "44", "131", "0000002", "NotPrincess", "EDI", "EH2 4HF", "95k"})
		if _, err := cl.ApplyDelta(ctx, 1, relation.Delta{Inserts: []relation.Tuple{{
			"f4", "w", "MTS", "31", "20", "0000003", "Muntplein", "AMS", "1012 WR", "75k"}}}); err != nil {
			t.Fatal(err)
		}
		check(t, cl, sp)
	})

	t.Run("delete-ratio", func(t *testing.T) {
		cl := uniformCluster(t, 3, 8)
		sp, err := CompileSingle(ctx, cl, phi1, PatDetectS, Options{DeltaFallbackRatio: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sp.DetectIncremental(ctx); err != nil {
			t.Fatal(err)
		}
		// Delete a third of site 0 — far past the 5% ratio.
		if _, err := cl.ApplyDelta(ctx, 0, relation.Delta{Deletes: []int{0}}); err != nil {
			t.Fatal(err)
		}
		check(t, cl, sp)
	})

	t.Run("log-trimmed", func(t *testing.T) {
		cl := uniformCluster(t, 3, 9)
		sp, err := CompileSingle(ctx, cl, phi1, PatDetectS, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sp.DetectIncremental(ctx); err != nil {
			t.Fatal(err)
		}
		// More applies than the log retains, without detecting between.
		for k := 0; k < deltaLogCap+40; k++ {
			d := relation.Delta{Inserts: []relation.Tuple{{
				fmt.Sprintf("t%d", k), "x", "MTS", "44",
				fmt.Sprintf("%d", k%3), "1234567", "Mayfield", "NYC", "EH4 8LE", "80k"}}}
			if _, err := cl.ApplyDelta(ctx, 0, d); err != nil {
				t.Fatal(err)
			}
		}
		check(t, cl, sp)
	})
}

// TestSigmaMaintenanceMatchesFresh pins the serving-cache half: after
// ApplyDelta, a cached σ entry must report the same statistics as
// routing the mutated fragment from scratch.
func TestSigmaMaintenanceMatchesFresh(t *testing.T) {
	ctx := context.Background()
	frag := workload.Cust(workload.CustConfig{N: 400, Seed: 6, ErrRate: 0.05})
	s := NewSite(0, frag, relation.True())
	spec, err := SpecFromCFD(workload.CustPatternCFD(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SigmaStats(ctx, spec); err != nil { // prime the cache
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	stream := workload.CustDeltaStream(frag, workload.DeltaConfig{Seed: 2, Inserts: 4, Updates: 2, Deletes: 2})
	for step := 0; step < 10; step++ {
		if _, err := s.ApplyDelta(ctx, stream.Next(), ""); err != nil {
			t.Fatal(err)
		}
		got, err := s.SigmaStats(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		_, want, err := spec.AssignAll(frag.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("step %d: maintained lstat %v, fresh routing %v", step, got, want)
		}
		_ = rng
	}
}

// TestIncrementalCancelDuringShippingDrainsDeposits is the incremental
// half of the cancellation invariant: a context cancelled while delta
// blocks are being shipped must leave zero buffered deposits, and the
// session must recover (reseed) on the next call with byte-identical
// results.
func TestIncrementalCancelDuringShippingDrainsDeposits(t *testing.T) {
	data := workload.Cust(workload.CustConfig{N: 2_000, Seed: 5, ErrRate: 0.05})
	h, err := partition.Uniform(data, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	landed := false
	bare := make([]*Site, h.N())
	sites := make([]SiteAPI, h.N())
	for i, frag := range h.Fragments {
		bare[i] = NewSite(i, frag, relation.True())
		sites[i] = &cancellingSite{Site: bare[i], once: &once, cancel: cancel, landed: &landed}
	}
	cl, err := NewCluster(h.Schema, sites)
	if err != nil {
		t.Fatal(err)
	}
	rule := workload.CustPatternCFD(16)
	sp, err := CompileSingle(context.Background(), cl, rule, PatDetectS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The seeding round ships full blocks as delta inserts; the first
	// deposit pulls the plug mid-shipping.
	_, err = sp.DetectIncremental(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if !landed {
		t.Fatal("no deposit landed before the cancel — the drain assertion would be vacuous")
	}
	for i, s := range bare {
		if n := depositCount(s); n != 0 {
			t.Errorf("site %d still buffers %d deposit tasks after cancelled incremental run", i, n)
		}
	}
	// Recovery: a live context reseeds and matches the one-shot path.
	inc, err := sp.DetectIncremental(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := sp.Detect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if inc.Patterns.String() != fresh.Patterns.String() ||
		inc.ShippedTuples != fresh.ShippedTuples || inc.ModeledTime != fresh.ModeledTime {
		t.Fatal("post-cancel incremental round diverges from fresh Detect")
	}
	for i, s := range bare {
		if n := depositCount(s); n != 0 {
			t.Errorf("site %d holds %d leftover deposit tasks after recovery round", i, n)
		}
	}
}
