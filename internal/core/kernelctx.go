package core

import (
	"context"

	"distcfd/internal/engine"
)

// Detection-kernel resources travel from a compiled plan to the
// in-process sites through the run's context: the plan owns the
// scratch pool (so concurrent Detect calls on one Detector reuse one
// set of buffers) and decides the intra-unit worker budget (so
// cluster-level and intra-unit parallelism split Options.Workers
// instead of fighting). Remote proxies simply don't forward the
// value — the serving machine's site applies its own budget, set by
// the server at startup (Site.SetDetectParallelism).

type kernelCtxKey struct{}

type kernelResources struct {
	kern    *engine.Kernel
	workers int
}

// WithDetectResources returns a context carrying a detection-kernel
// scratch pool and an intra-unit worker budget for the in-process
// site methods downstream of it.
func WithDetectResources(ctx context.Context, kern *engine.Kernel, workers int) context.Context {
	if workers < 1 {
		workers = 1
	}
	return context.WithValue(ctx, kernelCtxKey{}, kernelResources{kern: kern, workers: workers})
}

// detectResources resolves the kernel and worker budget for a site
// call: the context's if the run annotated one, else the site's own.
func (s *Site) detectResources(ctx context.Context) (*engine.Kernel, engine.Opts) {
	if r, ok := ctx.Value(kernelCtxKey{}).(kernelResources); ok && r.kern != nil {
		return r.kern, engine.Opts{Workers: r.workers}
	}
	w := s.intraWorkers
	if w < 1 {
		w = 1
	}
	return &s.kern, engine.Opts{Workers: w}
}
