package core

import (
	"distcfd/internal/mining"
	"distcfd/internal/relation"
)

// siteFragment is the Site's storage seam: every fragment-touching
// operation a site performs, abstracted over where the tuples live.
// memFrag serves them from an in-memory *relation.Relation (the
// original deployment shape); storeFrag (storefrag.go) serves them
// from a packed colstore fragment plus an in-memory delta overlay, so
// a site can hold a fragment bigger than RAM.
//
// Read methods must be safe for concurrent callers; Apply follows the
// single-writer contract every fragment mutation has (the driver
// serializes ApplyDelta against detection).
type siteFragment interface {
	// Schema returns the fragment schema.
	Schema() *relation.Schema
	// Len returns the current tuple count |Di|.
	Len() int
	// Version returns a comparable token identifying the fragment's
	// current content state. The token changes on every mutation and is
	// stable between mutations — the serving caches key on it exactly
	// as they used to key on the *relation.Encoded identity.
	Version() any
	// VersionIfBuilt returns the current token without forcing any
	// state to be built, or nil when no token exists yet (an in-memory
	// fragment that was never encoded). Cache-consistency checks use it
	// so that probing never pays for building a view.
	VersionIfBuilt() any
	// AssignAll computes σ for every tuple under spec: the block index
	// per tuple (-1 = unmatched) and the per-block counts.
	AssignAll(spec *BlockSpec) (assign []int, counts []int, err error)
	// ProjectRows materializes the selected rows projected onto attrs,
	// sharing the fragment's dictionaries (IDs stay valid, merely
	// sparse) so downstream checks keep the fragment's interning.
	ProjectRows(name string, attrs []string, rows []int) (*relation.Relation, error)
	// Scan streams every tuple in row order. The callback must not
	// retain t — implementations may reuse the buffer between calls
	// (the strings themselves are stable).
	Scan(fn func(t relation.Tuple) error) error
	// Apply applies one delta (deletes by swap-with-last, then inserts
	// appended), returning the removed tuples in descending pre-delta
	// index order — the same contract as relation.Apply. The returned
	// tuples are stable (safe to retain in the delta log).
	Apply(d relation.Delta) ([]relation.Tuple, error)
	// Mine runs the closed-frequent-pattern preprocessing over the
	// X-projection of the fragment.
	Mine(x []string, theta float64) ([]mining.Pattern, error)
	// Close releases any resources backing the fragment.
	Close() error
}

// memFrag adapts *relation.Relation to the seam. The version token is
// the relation's encoded-view identity — exactly the invalidation
// signal the caches used before the seam existed, so in-memory sites
// behave bit-for-bit as they always did (including the "non-delta
// mutation resets everything" semantics of Append/SortBy, which
// invalidate the encoding and thereby change the token).
type memFrag struct {
	r *relation.Relation
}

var _ siteFragment = memFrag{}

func (m memFrag) Schema() *relation.Schema { return m.r.Schema() }

func (m memFrag) Len() int { return m.r.Len() }

func (m memFrag) Version() any { return m.r.Encoded() }

func (m memFrag) VersionIfBuilt() any {
	// The nil check matters: a typed-nil *Encoded boxed into any would
	// compare unequal to untyped nil and wedge every consistency check.
	if e := m.r.EncodedIfBuilt(); e != nil {
		return e
	}
	return nil
}

func (m memFrag) AssignAll(spec *BlockSpec) ([]int, []int, error) {
	return spec.AssignAll(m.r)
}

func (m memFrag) ProjectRows(name string, attrs []string, rows []int) (*relation.Relation, error) {
	return m.r.ProjectRows(name, attrs, rows)
}

func (m memFrag) Scan(fn func(relation.Tuple) error) error {
	for _, t := range m.r.Tuples() {
		if err := fn(t); err != nil {
			return err
		}
	}
	return nil
}

func (m memFrag) Apply(d relation.Delta) ([]relation.Tuple, error) {
	return m.r.Apply(d)
}

func (m memFrag) Mine(x []string, theta float64) ([]mining.Pattern, error) {
	return mining.ClosedPatternsWithSupport(m.r, x, theta)
}

func (m memFrag) Close() error { return nil }
