package core

import (
	"context"
	"strings"
	"testing"

	"distcfd/internal/cfd"
	"distcfd/internal/relation"
)

// TestFingerprintUnambiguous pins that the σ-cache key cannot collide
// for specs whose values contain separator-like bytes — 0x1f-adjacent
// data is in scope since the columnar-encoding work.
func TestFingerprintUnambiguous(t *testing.T) {
	mk := func(x []string, pats [][]string) *BlockSpec {
		spec, err := NewBlockSpecOrdered(x, pats)
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}
	pairs := [][2]*BlockSpec{
		{
			mk([]string{"a", "b"}, [][]string{{"x\x1fy", "z"}}),
			mk([]string{"a", "b"}, [][]string{{"x", "y\x1fz"}}),
		},
		{
			mk([]string{"a"}, [][]string{{"p\x1e"}, {"q"}}),
			mk([]string{"a"}, [][]string{{"p"}, {"\x1eq"}}),
		},
		{
			mk([]string{"ab"}, [][]string{{"c"}}),
			mk([]string{"a"}, [][]string{{"bc"}}),
		},
	}
	for i, p := range pairs {
		if p[0].Fingerprint() == p[1].Fingerprint() {
			t.Errorf("pair %d: distinct specs share a fingerprint %q", i, p[0].Fingerprint())
		}
	}
	// And stability: same content, independent spec values, same key —
	// that is what gives wire-decoded specs their cache hits.
	a := mk([]string{"a", "b"}, [][]string{{"x", "y"}, {"x", cfd.Wildcard}})
	b := mk([]string{"a", "b"}, [][]string{{"x", "y"}, {"x", cfd.Wildcard}})
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal-content specs must share a fingerprint")
	}
}

// TestConstantsCacheKeyUnambiguous: two different CFDs whose String()
// renderings collide (", "-joined values) must not share a
// constants-cache entry.
func TestConstantsCacheKeyUnambiguous(t *testing.T) {
	s := relation.MustSchema("T", []string{"a", "b", "c"})
	frag := relation.MustFromRows(s,
		[]string{"u, v", "w", "1"},
		[]string{"u", "v, w", "2"},
	)
	site := NewSite(0, frag, relation.True())
	// Constant units keyed on ambiguous constants: c1 matches row 1,
	// c2 matches row 2; both violate their required RHS.
	c1 := cfd.MustNew("k", []string{"a", "b"}, []string{"c"}, []cfd.PatternTuple{
		{LHS: []string{"u, v", "w"}, RHS: []string{"ZZZ"}},
	})
	c2 := cfd.MustNew("k", []string{"a", "b"}, []string{"c"}, []cfd.PatternTuple{
		{LHS: []string{"u", "v, w"}, RHS: []string{"ZZZ"}},
	})
	if c1.String() != c2.String() {
		t.Skip("cfd.String became unambiguous; cache-key collision no longer reproducible this way")
	}
	ctx := context.Background()
	p1, err := site.DetectConstantsLocal(ctx, c1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := site.DetectConstantsLocal(ctx, c2)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Len() != 1 || p2.Len() != 1 {
		t.Fatalf("each rule should flag its own row: got %d and %d", p1.Len(), p2.Len())
	}
	if p1.Tuple(0).Equal(p2.Tuple(0)) {
		t.Errorf("distinct CFDs served the same cached constants result %v", p1.Tuple(0))
	}
}

// TestTaskKeysUniqueAcrossClusters: two Cluster instances over the
// same sites must never mint colliding task keys — a tombstone from a
// previous driver's cancelled run would otherwise silently swallow a
// new driver's deposits.
func TestTaskKeysUniqueAcrossClusters(t *testing.T) {
	s := relation.MustSchema("T", []string{"a"})
	frag := relation.MustFromRows(s, []string{"1"})
	mkCluster := func() *Cluster {
		cl, err := NewCluster(s, []SiteAPI{NewSite(0, frag, relation.True())})
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	cl1, cl2 := mkCluster(), mkCluster()
	k1, k2 := cl1.newTask("blocks"), cl2.newTask("blocks")
	if k1 == k2 {
		t.Fatalf("distinct clusters minted the same task key %q", k1)
	}
	if !strings.HasPrefix(k1, "blocks-") {
		t.Errorf("task key %q lost its kind prefix", k1)
	}
	// The cross-driver tombstone scenario end to end: driver 1 cancels
	// its first task at a shared long-lived site; driver 2's first
	// deposit must still land.
	shared := NewSite(0, frag, relation.True())
	if err := shared.Cancel(k1); err != nil {
		t.Fatal(err)
	}
	if err := shared.Deposit(context.Background(), BlockTask(k2, 0), frag, ""); err != nil {
		t.Fatal(err)
	}
	if shared.PendingDeposits() != 1 {
		t.Error("second driver's deposit was swallowed by the first driver's tombstone")
	}
}
