package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"distcfd/internal/dist"
)

// Fault tolerance. The paper's algorithms assume every site answers
// every request; this layer relaxes that without touching the answers:
// under FailRetry, transient site failures are absorbed by per-call
// retries with capped exponential backoff plus whole-unit re-runs, and
// the successful attempt is exactly a clean run — violation sets,
// shipment matrices and modeled time stay byte-identical to a
// fault-free execution, with the turbulence charged only to the
// metrics' fault channel. Under FailDegrade, a site that stays down
// after retries is excluded and the unit re-runs its assignment over
// the reachable fragments, reporting Partial/ExcludedSites/Coverage.
// Per-site circuit breakers stop a dead site from charging every call
// its full retry schedule; half-open recovery is probed with Ping.

// FailurePolicy selects how a detection run responds to site failures.
type FailurePolicy int

const (
	// FailFast aborts the run on the first site error (the zero value:
	// the behavior of every release before the fault-tolerance layer).
	FailFast FailurePolicy = iota
	// FailRetry absorbs transient site failures with bounded retries and
	// keeps the complete-answer contract: the run either reports exactly
	// what a fault-free run would, or fails.
	FailRetry
	// FailDegrade retries like FailRetry, but a site still down after
	// retries is excluded and the run completes over the reachable
	// fragments, reporting Partial, ExcludedSites and Coverage. Every
	// reported violation is a true violation of the reachable data.
	FailDegrade
)

func (p FailurePolicy) String() string {
	switch p {
	case FailFast:
		return "FailFast"
	case FailRetry:
		return "FailRetry"
	case FailDegrade:
		return "FailDegrade"
	default:
		return fmt.Sprintf("FailurePolicy(%d)", int(p))
	}
}

// RetryPolicy bounds retry behavior under FailRetry/FailDegrade. The
// zero value of any field selects its default.
type RetryPolicy struct {
	// Attempts is the per-call attempt budget, first try included.
	// Default 4.
	Attempts int
	// UnitAttempts bounds whole-pipeline re-runs after a failure that
	// per-call retries could not absorb (a non-idempotent call that may
	// have executed, or an exhausted call budget). Default 3.
	UnitAttempts int
	// BaseDelay is the backoff before the first retry, doubling per
	// attempt up to MaxDelay, with jitter. Default 2ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Default 250ms.
	MaxDelay time.Duration
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.Attempts <= 0 {
		rp.Attempts = 4
	}
	if rp.UnitAttempts <= 0 {
		rp.UnitAttempts = 3
	}
	if rp.BaseDelay <= 0 {
		rp.BaseDelay = 2 * time.Millisecond
	}
	if rp.MaxDelay <= 0 {
		rp.MaxDelay = 250 * time.Millisecond
	}
	return rp
}

// backoff returns the jittered delay before retry attempt n (n ≥ 1):
// BaseDelay doubling per attempt, capped at MaxDelay, with the upper
// half randomized so synchronized retries against one struggling site
// spread out. Jitter touches timing only, never results.
func (rp RetryPolicy) backoff(n int) time.Duration {
	d := rp.BaseDelay
	for i := 1; i < n && d < rp.MaxDelay; i++ {
		d *= 2
	}
	if d > rp.MaxDelay {
		d = rp.MaxDelay
	}
	if half := int64(d / 2); half > 0 {
		d = d/2 + time.Duration(rand.Int63n(half+1))
	}
	return d
}

// ErrCode is a machine-readable error class that survives the trip
// through net/rpc's string-typed errors (the wire-v5 error envelope).
type ErrCode string

const (
	// CodeStale marks incremental state that can no longer serve the
	// requested delta range; the caller reseeds (ErrStaleIncremental).
	CodeStale ErrCode = "stale"
	// CodeUnavailable marks a transport- or injection-level failure —
	// the site may be fine, the call did not get through. Retryable.
	CodeUnavailable ErrCode = "unavailable"
	// CodeOverloaded marks an admission-control rejection: the site is
	// alive but its work queue is full. The call never ran. Retryable
	// after the RetryAfter hint; never fed to circuit breakers — an
	// overloaded site answered, so it must not look dead.
	CodeOverloaded ErrCode = "overloaded"
	// CodeDraining marks a site that is finishing in-flight work and
	// refuses new tasks (graceful shutdown). The call never ran. Not
	// worth per-call retries: FailDegrade reroutes or excludes instead.
	CodeDraining ErrCode = "draining"
)

// CodedError carries an ErrCode across process boundaries. The remote
// layer encodes it into an "[distcfd:<code>] msg" envelope server-side
// and decodes it back client-side; in-process it flows as-is.
type CodedError struct {
	Code ErrCode
	Msg  string
	// NotExecuted marks a failure that provably happened before the
	// call ran at the site (breaker rejection, dial failure, send-side
	// transport error), making even a non-idempotent call safe to retry.
	NotExecuted bool
	// RetryAfter is the site's backpressure hint (CodeOverloaded): do
	// not retry this site sooner. Zero means no hint. The remote layer
	// carries it in the wire-v7 error envelope.
	RetryAfter time.Duration
}

func (e *CodedError) Error() string { return e.Msg }

// ErrCodeOf extracts the ErrCode of err, or "" when it carries none.
func ErrCodeOf(err error) ErrCode {
	var ce *CodedError
	if errors.As(err, &ce) {
		return ce.Code
	}
	return ""
}

// retryAfterOf extracts the backpressure hint of err (zero if none).
func retryAfterOf(err error) time.Duration {
	var ce *CodedError
	if errors.As(err, &ce) {
		return ce.RetryAfter
	}
	return 0
}

// transientErr is implemented by errors that classify themselves as
// retryable (the fault-injection harness's injected faults).
type transientErr interface{ Transient() bool }

// preExecutionErr is implemented by errors that guarantee the failed
// call never ran at the site.
type preExecutionErr interface{ PreExecution() bool }

// isTransient reports whether err is worth retrying: an injected or
// transport-level failure, never a context death or a typed
// application error (bad schema, stale state, predicate mismatch).
func isTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if ce := (*CodedError)(nil); errors.As(err, &ce) {
		return ce.Code == CodeUnavailable || ce.Code == CodeOverloaded || ce.Code == CodeDraining
	}
	if te := transientErr(nil); errors.As(err, &te) {
		return te.Transient()
	}
	return false
}

// preExecution reports whether err guarantees the call never executed.
func preExecution(err error) bool {
	if ce := (*CodedError)(nil); errors.As(err, &ce) {
		return ce.NotExecuted
	}
	if pe := preExecutionErr(nil); errors.As(err, &pe) {
		return pe.PreExecution()
	}
	return false
}

// SiteFailure attributes a failure to one site after its per-call
// retry budget was exhausted. FailDegrade uses the attribution to
// exclude the site; FailRetry to bound unit re-runs.
type SiteFailure struct {
	Site int
	Err  error
}

func (e *SiteFailure) Error() string {
	return fmt.Sprintf("core: site %d failed after retries: %v", e.Site, e.Err)
}
func (e *SiteFailure) Unwrap() error { return e.Err }

// BreakerState is one of the classic three circuit-breaker states.
type BreakerState int32

const (
	// BreakerClosed passes calls through (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects calls without trying the site until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single Ping probe whose outcome closes
	// or re-opens the breaker.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int32(s))
	}
}

const (
	// breakerThreshold consecutive transient failures open a breaker.
	breakerThreshold = 5
	// breakerCooldown is how long an open breaker rejects calls before
	// admitting a half-open probe.
	breakerCooldown = 100 * time.Millisecond
)

// breaker is one site's circuit breaker. Only runs under an active
// failure policy feed it; FailFast runs never touch breakers, so
// their call path is byte-for-byte the pre-fault-tolerance one.
type breaker struct {
	mu       sync.Mutex
	state    BreakerState
	fails    int // consecutive transient failures
	openedAt time.Time
}

// admit gates one call: closed passes, open within cooldown rejects
// with a pre-execution unavailable error, open past cooldown turns
// half-open and probes the site with Ping — success closes the breaker
// and admits the call, failure re-opens it. A concurrent caller that
// finds the breaker already half-open is rejected rather than piling a
// second probe onto a struggling site.
func (b *breaker) admit(ctx context.Context, site int, s SiteAPI) error {
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		b.mu.Unlock()
		return nil
	case BreakerHalfOpen:
		b.mu.Unlock()
		return &CodedError{
			Code:        CodeUnavailable,
			Msg:         fmt.Sprintf("core: site %d breaker half-open, probe in flight", site),
			NotExecuted: true,
		}
	default: // BreakerOpen
		if time.Since(b.openedAt) < breakerCooldown {
			b.mu.Unlock()
			return &CodedError{
				Code:        CodeUnavailable,
				Msg:         fmt.Sprintf("core: site %d breaker open", site),
				NotExecuted: true,
			}
		}
		b.state = BreakerHalfOpen
		b.mu.Unlock()
		if err := s.Ping(ctx); err != nil {
			b.observe(false)
			return &CodedError{
				Code:        CodeUnavailable,
				Msg:         fmt.Sprintf("core: site %d breaker probe failed: %v", site, err),
				NotExecuted: true,
			}
		}
		b.observe(true)
		return nil
	}
}

// observe feeds one call outcome into the breaker: success closes it,
// a transient failure counts toward the threshold (a half-open probe
// failure re-opens immediately). Non-transient application errors must
// not be fed here — a site returning "bad schema" is healthy.
func (b *breaker) observe(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = BreakerClosed
		b.fails = 0
		return
	}
	b.fails++
	if b.state == BreakerHalfOpen || b.fails >= breakerThreshold {
		b.state = BreakerOpen
		b.openedAt = time.Now()
	}
}

func (b *breaker) currentState() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// faultState is the per-run fault-handling state one Detect call
// threads through all of its units: the policy, the per-site exclusion
// mask (shared, monotone), and the retry/fault counters stamped once
// into the final metrics. A nil *faultState (or FailFast) disables the
// whole layer.
type faultState struct {
	policy FailurePolicy
	retry  RetryPolicy

	mu       sync.Mutex
	excluded []bool
	retries  []int64
	faults   []int64
}

func newFaultState(n int, opt Options) *faultState {
	return &faultState{
		policy:   opt.Failure,
		retry:    opt.Retry.withDefaults(),
		excluded: make([]bool, n),
		retries:  make([]int64, n),
		faults:   make([]int64, n),
	}
}

// active reports whether the fault-tolerance layer is on.
func (fs *faultState) active() bool { return fs != nil && fs.policy != FailFast }

func (fs *faultState) isExcluded(i int) bool {
	if fs == nil {
		return false
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.excluded[i]
}

// exclude marks site i unreachable; reports whether it was newly so.
func (fs *faultState) exclude(i int) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.excluded[i] {
		return false
	}
	fs.excluded[i] = true
	return true
}

func (fs *faultState) excludedCount() int {
	if fs == nil {
		return 0
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := 0
	for _, x := range fs.excluded {
		if x {
			n++
		}
	}
	return n
}

func (fs *faultState) excludedSites() []int {
	if fs == nil {
		return nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []int
	for i, x := range fs.excluded {
		if x {
			out = append(out, i)
		}
	}
	return out
}

// eligible returns the coordinator-eligibility mask for assignment:
// nil while nothing is excluded, so fault-free runs take the exact
// pre-fault-tolerance assignment path.
func (fs *faultState) eligible() []bool {
	if fs == nil {
		return nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	any := false
	for _, x := range fs.excluded {
		if x {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	el := make([]bool, len(fs.excluded))
	for i, x := range fs.excluded {
		el[i] = !x
	}
	return el
}

func (fs *faultState) countRetry(i int) {
	fs.mu.Lock()
	fs.retries[i]++
	fs.mu.Unlock()
}

func (fs *faultState) countFault(i int) {
	fs.mu.Lock()
	fs.faults[i]++
	fs.mu.Unlock()
}

// stamp charges the run's accumulated retry/fault counters to the
// metrics' fault channel. Called exactly once per fs, by whoever
// created it, after the final metrics are assembled — unit metrics
// merge into run totals, so stamping per unit would double-count.
func (fs *faultState) stamp(m *dist.Metrics) {
	if fs == nil || m == nil {
		return
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for i := range fs.retries {
		if fs.retries[i] != 0 || fs.faults[i] != 0 {
			m.AddFaultStats(i, fs.retries[i], fs.faults[i])
		}
	}
}

func (fs *faultState) totals() (retries, faults int64) {
	if fs == nil {
		return 0, 0
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for i := range fs.retries {
		retries += fs.retries[i]
		faults += fs.faults[i]
	}
	return retries, faults
}

// errSiteExcluded guards calls routed to an already-excluded site —
// the pipeline skips excluded sites by mask, so hitting this means a
// unit compiled against the pre-exclusion site set; the unit re-runs.
var errSiteExcluded = &CodedError{Code: CodeUnavailable, Msg: "core: site excluded from degraded run", NotExecuted: true}

// unitFailure decides whether a failed pipeline attempt is re-run:
// FailFast never retries; FailRetry re-runs transient failures up to
// UnitAttempts; FailDegrade additionally excludes the site a
// SiteFailure blames — a newly excluded site grants a free re-run
// (each site can take an attempt down at most once), so the bound is
// UnitAttempts plus the number of sites that actually died.
func (fs *faultState) unitFailure(ctx context.Context, attempt int, err error) (bool, error) {
	if !fs.active() || ctx.Err() != nil || !isTransient(err) {
		return false, err
	}
	if fs.policy == FailDegrade {
		var sf *SiteFailure
		if errors.As(err, &sf) && fs.exclude(sf.Site) {
			if fs.excludedCount() >= len(fs.excluded) {
				return false, fmt.Errorf("core: every site excluded: %w", err)
			}
			return true, nil
		}
	}
	if attempt+1 >= fs.retry.UnitAttempts {
		return false, err
	}
	if sleepCtx(ctx, fs.retry.backoff(attempt+1)) != nil {
		return false, err
	}
	return true, nil
}

// coverage computes the reachable-tuple fraction over fragment sizes:
// 1 when nothing is excluded (or the instance is empty).
func (fs *faultState) coverage(fragSizes []int) float64 {
	var total, reach int64
	for i, n := range fragSizes {
		total += int64(n)
		if !fs.isExcluded(i) {
			reach += int64(n)
		}
	}
	if total == 0 {
		return 1
	}
	return float64(reach) / float64(total)
}

// sleepCtx sleeps d or until ctx dies, whichever is first. A sleep
// that provably cannot complete within the ctx deadline fails fast
// with DeadlineExceeded instead of burning the remaining budget — a
// retry-after hint longer than what's left of the run means the run
// is over now, not after the deadline has silently passed.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < d {
		return context.DeadlineExceeded
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// callSite invokes one site operation under the run's failure policy:
// per-call retries with capped exponential backoff and jitter for
// transient failures, circuit-breaker gating, and site attribution of
// the final error. idem marks operations safe to re-issue even when a
// failed attempt may have executed — pure reads, and the nonce-deduped
// mutations (Deposit/ApplyDelta); non-idempotent operations (the
// Detect* family, which consumes deposits) are retried only while
// failures provably happened before execution. With a nil or FailFast
// fs this is exactly a plain call.
func (cl *Cluster) callSite(ctx context.Context, fs *faultState, site int, idem bool, fn func(context.Context) error) error {
	if !fs.active() {
		return fn(ctx)
	}
	if fs.isExcluded(site) {
		return &SiteFailure{Site: site, Err: errSiteExcluded}
	}
	rp := fs.retry
	b := &cl.breakers[site]
	var last error
	var floor time.Duration // backpressure floor on the next backoff (retry-after hint)
	for attempt := 0; attempt < rp.Attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt > 0 {
			fs.countRetry(site)
			d := rp.backoff(attempt)
			if d < floor {
				d = floor
			}
			if err := sleepCtx(ctx, d); err != nil {
				return err
			}
		}
		floor = 0
		if err := b.admit(ctx, site, cl.sites[site]); err != nil {
			fs.countFault(site)
			last = err
			continue
		}
		err := fn(ctx)
		if err == nil {
			b.observe(true)
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		if !isTransient(err) {
			return err
		}
		switch ErrCodeOf(err) {
		case CodeOverloaded:
			// The site answered — it is alive, just saturated. Keep the
			// breaker out of it (an overloaded site must not look dead)
			// and honor its backpressure hint before the next attempt.
			fs.countFault(site)
			last = err
			floor = retryAfterOf(err)
			continue
		case CodeDraining:
			// Draining won't pass within this call's budget; escalate
			// immediately so FailDegrade reroutes the assignment via the
			// eligible mask instead of hammering a retiring site.
			fs.countFault(site)
			last = err
			return &SiteFailure{Site: site, Err: last}
		}
		b.observe(false)
		fs.countFault(site)
		last = err
		if !idem && !preExecution(err) {
			// The call may have executed; a blind re-issue could
			// double-consume deposits. Escalate to the unit level.
			break
		}
	}
	return &SiteFailure{Site: site, Err: last}
}

// Health reports every site's current breaker state. Sites a run never
// had trouble with report BreakerClosed.
func (cl *Cluster) Health() []BreakerState {
	out := make([]BreakerState, len(cl.breakers))
	for i := range cl.breakers {
		out[i] = cl.breakers[i].currentState()
	}
	return out
}

// SiteHealth is one site's health snapshot: the circuit-breaker state
// plus whether the site is known to be draining.
type SiteHealth struct {
	Site     int
	Breaker  BreakerState
	Draining bool
}

// drainStatus is implemented by sites that expose their drain state
// cheaply: the admission wrapper reports it directly, the remote proxy
// reports the last drain signal seen on the wire. The check must not
// block — HealthDetail is a snapshot, not a probe.
type drainStatus interface{ Draining() bool }

// HealthDetail reports breaker state and drain status for every site.
// Sites that don't expose a drain state report Draining=false.
func (cl *Cluster) HealthDetail() []SiteHealth {
	out := make([]SiteHealth, len(cl.breakers))
	for i := range cl.breakers {
		out[i] = SiteHealth{Site: i, Breaker: cl.breakers[i].currentState()}
		if d, ok := cl.sites[i].(drainStatus); ok {
			out[i].Draining = d.Draining()
		}
	}
	return out
}
