// Package faulty is the fault-injection harness: it wraps a
// core.SiteAPI (and, separately, a net.Listener) so that a seeded,
// deterministic plan of failures plays out against otherwise healthy
// code. The robustness tests use it to prove the retry/degrade layer's
// contracts — byte-identical results under transient faults, coherent
// partial results under dead sites, zero leaked deposits everywhere —
// and cfdsite's -fault-plan flag serves a faulty view over a real
// socket for end-to-end chaos runs.
//
// Injected faults happen strictly before the wrapped call executes,
// and say so (PreExecution), so even non-idempotent operations may be
// retried through them. They classify themselves transient
// (Transient), which is what the core retry layer keys on.
package faulty

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"distcfd/internal/cfd"
	"distcfd/internal/core"
	"distcfd/internal/mining"
	"distcfd/internal/relation"
)

// Plan is a deterministic, seedable fault schedule. The zero value
// injects nothing.
type Plan struct {
	// Seed drives the random-rate draws; two wrappers with equal plans
	// inject the same fault sequence for the same call sequence.
	Seed int64
	// Rate is the per-call probability of an injected failure over the
	// faultable methods (everything but identity accessors, the cleanup
	// messages, and Ping). Ping is exempt by design: rate faults model
	// load-dependent work failures, and the production regime the
	// breaker must survive is exactly a cheap liveness probe succeeding
	// while every work call fails. Fault Ping explicitly (err=Ping@n)
	// or kill the whole site (crash) instead.
	Rate float64
	// ErrOn schedules exact failures: method name → 1-based per-method
	// call ordinals that fail. "Deposit":[3] fails the third Deposit.
	ErrOn map[string][]int
	// LatencyEvery > 0 sleeps Latency before every LatencyEvery-th
	// faultable call (a latency spike, not a failure).
	LatencyEvery int
	Latency      time.Duration
	// CrashAt > 0 crashes the site when the global faultable-call
	// counter reaches it: the call fails and the site stays down. With
	// a rebuild function (WrapRestartable) and RestartAfter > 0, the
	// site comes back — with freshly rebuilt state, i.e. total loss of
	// deposits, sessions and caches — after RestartAfter further calls
	// have failed against the corpse.
	CrashAt      int
	RestartAfter int
	// ConnResetEvery/ConnResetOps drive WrapListener: every
	// ConnResetEvery-th accepted connection is killed with ECONNRESET
	// after ConnResetOps reads+writes.
	ConnResetEvery int
	ConnResetOps   int

	// Overload fault classes (the wire-v7 robustness surface). These
	// inject typed admission rejections rather than *Fault transport
	// failures, exercising the coordinator's backpressure handling:
	// OverloadEvery > 0 rejects every OverloadEvery-th work call with a
	// core.CodeOverloaded error carrying OverloadRetryAfter as its
	// retry-after hint (a full wait queue); DrainAfter > 0 flips the
	// site into a draining state once the global faultable-call counter
	// reaches it — every later work call is rejected with
	// core.CodeDraining (drain-mid-detect) while Ping keeps answering,
	// exactly like a site retiring gracefully; SlowOn adds a per-call
	// latency to the named methods (a slow consumer, distinct from the
	// periodic LatencyEvery spikes).
	OverloadEvery      int
	OverloadRetryAfter time.Duration
	DrainAfter         int
	SlowOn             map[string]time.Duration
}

// Parse builds a Plan from the compact flag syntax used by
// cfdsite -fault-plan:
//
//	seed=7,rate=0.1,err=Deposit@3,lat=5ms@10,crash=20,restart=5,reset=2@40
//
// plus the overload classes:
//
//	over=50ms@4,drain=30,slow=DetectTask@20ms
//
// err may repeat for several methods or ordinals; lat is
// <duration>@<every>; reset is <every>@<ops>; over is
// <retry-after>@<every>; drain is a global call ordinal; slow is
// <method>@<duration> and may repeat. Unknown keys fail.
func Parse(s string) (Plan, error) {
	p := Plan{}
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Plan{}, fmt.Errorf("faulty: field %q is not key=value", field)
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		case "rate":
			p.Rate, err = strconv.ParseFloat(v, 64)
		case "err":
			method, ord, ok := strings.Cut(v, "@")
			if !ok {
				return Plan{}, fmt.Errorf("faulty: err=%q wants method@ordinal", v)
			}
			n, perr := strconv.Atoi(ord)
			if perr != nil {
				return Plan{}, fmt.Errorf("faulty: err=%q: %v", v, perr)
			}
			if p.ErrOn == nil {
				p.ErrOn = make(map[string][]int)
			}
			p.ErrOn[method] = append(p.ErrOn[method], n)
		case "lat":
			dur, every, ok := strings.Cut(v, "@")
			if !ok {
				return Plan{}, fmt.Errorf("faulty: lat=%q wants duration@every", v)
			}
			p.Latency, err = time.ParseDuration(dur)
			if err == nil {
				p.LatencyEvery, err = strconv.Atoi(every)
			}
		case "crash":
			p.CrashAt, err = strconv.Atoi(v)
		case "restart":
			p.RestartAfter, err = strconv.Atoi(v)
		case "reset":
			every, ops, ok := strings.Cut(v, "@")
			if !ok {
				return Plan{}, fmt.Errorf("faulty: reset=%q wants every@ops", v)
			}
			p.ConnResetEvery, err = strconv.Atoi(every)
			if err == nil {
				p.ConnResetOps, err = strconv.Atoi(ops)
			}
		case "over":
			after, every, ok := strings.Cut(v, "@")
			if !ok {
				return Plan{}, fmt.Errorf("faulty: over=%q wants retry-after@every", v)
			}
			p.OverloadRetryAfter, err = time.ParseDuration(after)
			if err == nil {
				p.OverloadEvery, err = strconv.Atoi(every)
			}
		case "drain":
			p.DrainAfter, err = strconv.Atoi(v)
		case "slow":
			method, dur, ok := strings.Cut(v, "@")
			if !ok {
				return Plan{}, fmt.Errorf("faulty: slow=%q wants method@duration", v)
			}
			var d time.Duration
			d, err = time.ParseDuration(dur)
			if err == nil {
				if p.SlowOn == nil {
					p.SlowOn = make(map[string]time.Duration)
				}
				p.SlowOn[method] = d
			}
		default:
			return Plan{}, fmt.Errorf("faulty: unknown key %q", k)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("faulty: parsing %q: %v", field, err)
		}
	}
	return p, nil
}

// Fault is one injected failure. It happened before the wrapped call
// ran (PreExecution) and is retryable (Transient).
type Fault struct {
	Site   int
	Call   int // global faultable-call ordinal at the wrapper
	Method string
	Reason string // "scheduled", "rate", "crashed"
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faulty: injected %s fault at site %d, call %d (%s)", f.Reason, f.Site, f.Call, f.Method)
}

// Transient marks the fault retryable to the core retry layer.
func (f *Fault) Transient() bool { return true }

// PreExecution guarantees the wrapped call never ran.
func (f *Fault) PreExecution() bool { return true }

// Site wraps a core.SiteAPI with a fault plan. Identity accessors (ID,
// NumTuples, Predicate) and the cleanup messages (Abort, Cancel,
// DropSession) pass through unfaulted: identity must stay coherent for
// the cluster to exist at all, and cleanup is best-effort by contract
// — faulting it would only test the harness, not the detection layer.
// Ping is faultable but exempt from the rate draws and the overload
// classes: a crashed site fails its probe and err=Ping@n faults it on
// schedule, but a merely flaky or overloaded site answers Ping while
// its work calls fail — the flap regime half-open breakers live in.
// Everything else draws from the full plan. Safe for concurrent use
// (-race clean); note that under concurrency the interleaving decides
// which call a rate-draw fault lands on, while the number of draws
// stays deterministic.
type Site struct {
	plan    Plan
	rebuild func() core.SiteAPI

	mu      sync.Mutex
	inner   core.SiteAPI
	rng     *rand.Rand
	calls   int
	perM    map[string]int
	crashed bool
	downFor int
}

// Wrap wraps s under plan. The site cannot restart after a crash
// (there is nothing to rebuild it from); CrashAt therefore holds it
// down for good — the shape the degraded-result tests want.
func Wrap(s core.SiteAPI, plan Plan) *Site {
	return &Site{plan: plan, inner: s, rng: rand.New(rand.NewSource(plan.Seed)), perM: make(map[string]int)}
}

// WrapRestartable is Wrap plus crash recovery: after a crash and
// RestartAfter further failed calls, rebuild() replaces the inner site
// — state loss included, exactly like a process restart.
func WrapRestartable(rebuild func() core.SiteAPI, plan Plan) *Site {
	w := Wrap(rebuild(), plan)
	w.rebuild = rebuild
	return w
}

// Inner returns the currently wrapped site (the rebuilt one after a
// restart). Tests use it to inspect site state behind the faults.
func (s *Site) Inner() core.SiteAPI {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner
}

// before charges one faultable call against the plan: it returns the
// inner site to use, a latency to sleep (outside the lock), or the
// injected fault.
func (s *Site) before(method string) (core.SiteAPI, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	call := s.calls
	s.perM[method]++
	ord := s.perM[method]

	if s.plan.CrashAt > 0 && !s.crashed && call >= s.plan.CrashAt && s.downFor == 0 {
		s.crashed = true
	}
	if s.crashed {
		s.downFor++
		if s.rebuild != nil && s.plan.RestartAfter > 0 && s.downFor > s.plan.RestartAfter {
			// Release the corpse's resources first: a disk-backed site
			// (core.OpenStoreSite) holds a file mapping and a WAL handle
			// on the store directory its replacement is about to reopen.
			if c, ok := s.inner.(interface{ Close() error }); ok {
				c.Close()
			}
			s.inner = s.rebuild()
			s.crashed = false
		} else {
			return nil, 0, &Fault{Site: s.inner.ID(), Call: call, Method: method, Reason: "crashed"}
		}
	}
	for _, o := range s.plan.ErrOn[method] {
		if o == ord {
			return nil, 0, &Fault{Site: s.inner.ID(), Call: call, Method: method, Reason: "scheduled"}
		}
	}
	// The rate draws and the overload classes model load-dependent work
	// failures; Ping is exempt — an overloaded, draining or flaky site
	// still answers its liveness probe (crash and err=Ping@n above are
	// how a dead probe is injected).
	if method != "Ping" {
		if s.plan.DrainAfter > 0 && call >= s.plan.DrainAfter {
			return nil, 0, &core.CodedError{
				Code:        core.CodeDraining,
				Msg:         fmt.Sprintf("faulty: injected draining rejection at site %d, call %d (%s)", s.inner.ID(), call, method),
				NotExecuted: true,
			}
		}
		if s.plan.OverloadEvery > 0 && call%s.plan.OverloadEvery == 0 {
			return nil, 0, &core.CodedError{
				Code:        core.CodeOverloaded,
				Msg:         fmt.Sprintf("faulty: injected overload rejection at site %d, call %d (%s)", s.inner.ID(), call, method),
				NotExecuted: true,
				RetryAfter:  s.plan.OverloadRetryAfter,
			}
		}
		if s.plan.Rate > 0 && s.rng.Float64() < s.plan.Rate {
			return nil, 0, &Fault{Site: s.inner.ID(), Call: call, Method: method, Reason: "rate"}
		}
	}
	var lat time.Duration
	if s.plan.LatencyEvery > 0 && call%s.plan.LatencyEvery == 0 {
		lat = s.plan.Latency
	}
	if d := s.plan.SlowOn[method]; d > lat {
		lat = d
	}
	return s.inner, lat, nil
}

func (s *Site) call(method string, fn func(core.SiteAPI) error) error {
	inner, lat, err := s.before(method)
	if err != nil {
		return err
	}
	if lat > 0 {
		time.Sleep(lat)
	}
	return fn(inner)
}

// ID passes through (identity is never faulted).
func (s *Site) ID() int { return s.Inner().ID() }

// NumTuples passes through.
func (s *Site) NumTuples() (int, error) { return s.Inner().NumTuples() }

// Predicate passes through.
func (s *Site) Predicate() (relation.Predicate, error) { return s.Inner().Predicate() }

// Ping draws from the plan's crash and scheduled faults only: a
// crashed site must look crashed to the health probe, but rate and
// overload faults never hit Ping — the probe of a loaded-but-alive
// site succeeds while its work calls fail, which is the flap regime
// the breaker tests pin (fault the probe explicitly with err=Ping@n).
func (s *Site) Ping(ctx context.Context) error {
	return s.call("Ping", func(in core.SiteAPI) error { return in.Ping(ctx) })
}

// SigmaStats forwards under the plan.
func (s *Site) SigmaStats(ctx context.Context, spec *core.BlockSpec) (out []int, err error) {
	err = s.call("SigmaStats", func(in core.SiteAPI) error { out, err = in.SigmaStats(ctx, spec); return err })
	return out, err
}

// ExtractBlock forwards under the plan.
func (s *Site) ExtractBlock(ctx context.Context, spec *core.BlockSpec, l int, attrs []string) (out *relation.Relation, err error) {
	err = s.call("ExtractBlock", func(in core.SiteAPI) error { out, err = in.ExtractBlock(ctx, spec, l, attrs); return err })
	return out, err
}

// ExtractMatching forwards under the plan.
func (s *Site) ExtractMatching(ctx context.Context, spec *core.BlockSpec, attrs []string) (out *relation.Relation, err error) {
	err = s.call("ExtractMatching", func(in core.SiteAPI) error { out, err = in.ExtractMatching(ctx, spec, attrs); return err })
	return out, err
}

// ExtractBlocksBatch forwards under the plan.
func (s *Site) ExtractBlocksBatch(ctx context.Context, spec *core.BlockSpec, attrs []string, wanted []int) (out map[int]*relation.Relation, err error) {
	err = s.call("ExtractBlocksBatch", func(in core.SiteAPI) error {
		out, err = in.ExtractBlocksBatch(ctx, spec, attrs, wanted)
		return err
	})
	return out, err
}

// Deposit forwards under the plan.
func (s *Site) Deposit(ctx context.Context, task string, batch *relation.Relation, nonce string) error {
	return s.call("Deposit", func(in core.SiteAPI) error { return in.Deposit(ctx, task, batch, nonce) })
}

// Abort passes through unfaulted (cleanup).
func (s *Site) Abort(taskKey string) error { return s.Inner().Abort(taskKey) }

// Cancel passes through unfaulted (cleanup).
func (s *Site) Cancel(taskKey string) error { return s.Inner().Cancel(taskKey) }

// DetectTask forwards under the plan.
func (s *Site) DetectTask(ctx context.Context, task string, local core.LocalInput, cfds []*cfd.CFD) (out []*relation.Relation, err error) {
	err = s.call("DetectTask", func(in core.SiteAPI) error { out, err = in.DetectTask(ctx, task, local, cfds); return err })
	return out, err
}

// DetectAssignedSingle forwards under the plan.
func (s *Site) DetectAssignedSingle(ctx context.Context, taskPrefix string, spec *core.BlockSpec, blocks []int, c *cfd.CFD) (out *relation.Relation, err error) {
	err = s.call("DetectAssignedSingle", func(in core.SiteAPI) error {
		out, err = in.DetectAssignedSingle(ctx, taskPrefix, spec, blocks, c)
		return err
	})
	return out, err
}

// DetectAssignedSet forwards under the plan.
func (s *Site) DetectAssignedSet(ctx context.Context, taskPrefix string, spec *core.BlockSpec, blocks []int, cfds []*cfd.CFD) (out []*relation.Relation, err error) {
	err = s.call("DetectAssignedSet", func(in core.SiteAPI) error {
		out, err = in.DetectAssignedSet(ctx, taskPrefix, spec, blocks, cfds)
		return err
	})
	return out, err
}

// DetectConstantsLocal forwards under the plan.
func (s *Site) DetectConstantsLocal(ctx context.Context, c *cfd.CFD) (out *relation.Relation, err error) {
	err = s.call("DetectConstantsLocal", func(in core.SiteAPI) error { out, err = in.DetectConstantsLocal(ctx, c); return err })
	return out, err
}

// MineFrequent forwards under the plan.
func (s *Site) MineFrequent(ctx context.Context, x []string, theta float64) (out []mining.Pattern, err error) {
	err = s.call("MineFrequent", func(in core.SiteAPI) error { out, err = in.MineFrequent(ctx, x, theta); return err })
	return out, err
}

// ApplyDelta forwards under the plan.
func (s *Site) ApplyDelta(ctx context.Context, d relation.Delta, nonce string) (out core.DeltaInfo, err error) {
	err = s.call("ApplyDelta", func(in core.SiteAPI) error { out, err = in.ApplyDelta(ctx, d, nonce); return err })
	return out, err
}

// ExtractDeltaBlocks forwards under the plan.
func (s *Site) ExtractDeltaBlocks(ctx context.Context, spec *core.BlockSpec, attrs []string, wanted []int, fromGen int64) (out *core.DeltaBlocks, err error) {
	err = s.call("ExtractDeltaBlocks", func(in core.SiteAPI) error {
		out, err = in.ExtractDeltaBlocks(ctx, spec, attrs, wanted, fromGen)
		return err
	})
	return out, err
}

// FoldDetect forwards under the plan.
func (s *Site) FoldDetect(ctx context.Context, args core.FoldArgs) (out *core.FoldReply, err error) {
	err = s.call("FoldDetect", func(in core.SiteAPI) error { out, err = in.FoldDetect(ctx, args); return err })
	return out, err
}

// DropSession passes through unfaulted (cleanup).
func (s *Site) DropSession(session string) error { return s.Inner().DropSession(session) }

// DetectParallelism forwards to the inner site when it has the knob
// (so ServeAPIContext configures a wrapped *core.Site as usual).
func (s *Site) DetectParallelism() int {
	if p, ok := s.Inner().(interface{ DetectParallelism() int }); ok {
		return p.DetectParallelism()
	}
	return 0
}

// SetDetectParallelism forwards to the inner site when it has the knob.
func (s *Site) SetDetectParallelism(n int) {
	if p, ok := s.Inner().(interface{ SetDetectParallelism(int) }); ok {
		p.SetDetectParallelism(n)
	}
}

// PendingDeposits forwards to the inner site when it exposes the
// leak-detection counter (tests assert it is zero after faults).
func (s *Site) PendingDeposits() int {
	if p, ok := s.Inner().(interface{ PendingDeposits() int }); ok {
		return p.PendingDeposits()
	}
	return 0
}

var _ core.SiteAPI = (*Site)(nil)
