package faulty

import (
	"context"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"distcfd/internal/core"
	"distcfd/internal/relation"
	"distcfd/internal/workload"
)

func newInner() *core.Site { return core.NewSite(3, workload.EMPData(), relation.True()) }

func TestParseFullSyntax(t *testing.T) {
	got, err := Parse("seed=7, rate=0.1, err=Deposit@3, err=Deposit@5, err=Ping@1, lat=5ms@10, crash=20, restart=5, reset=2@40, over=50ms@4, drain=30, slow=DetectTask@20ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{
		Seed:               7,
		Rate:               0.1,
		ErrOn:              map[string][]int{"Deposit": {3, 5}, "Ping": {1}},
		Latency:            5 * time.Millisecond,
		LatencyEvery:       10,
		CrashAt:            20,
		RestartAfter:       5,
		ConnResetEvery:     2,
		ConnResetOps:       40,
		OverloadEvery:      4,
		OverloadRetryAfter: 50 * time.Millisecond,
		DrainAfter:         30,
		SlowOn:             map[string]time.Duration{"DetectTask": 20 * time.Millisecond},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Parse:\n got  %+v\n want %+v", got, want)
	}
	if empty, err := Parse("  "); err != nil || !reflect.DeepEqual(empty, Plan{}) {
		t.Errorf("empty spec should parse to the zero plan, got %+v, %v", empty, err)
	}
}

func TestParseRejectsMalformedSpecs(t *testing.T) {
	for _, bad := range []string{
		"bogus=1",       // unknown key
		"rate",          // not key=value
		"rate=x",        // bad number
		"err=Deposit",   // missing @ordinal
		"err=Deposit@x", // bad ordinal
		"lat=5ms",       // missing @every
		"reset=2",       // missing @ops
		"crash=twenty",  // bad number
		"over=50ms",     // missing @every
		"over=x@4",      // bad duration
		"drain=soon",    // bad number
		"slow=Deposit",  // missing @duration
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestScheduledFaults(t *testing.T) {
	ctx := context.Background()
	inner := newInner()
	s := Wrap(inner, Plan{ErrOn: map[string][]int{"Deposit": {2}}})
	batch := workload.EMPData()
	if err := s.Deposit(ctx, "t1", batch, ""); err != nil {
		t.Fatalf("first deposit: %v", err)
	}
	err := s.Deposit(ctx, "t2", batch, "")
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("second deposit should fail with a *Fault, got %v", err)
	}
	if f.Reason != "scheduled" || f.Method != "Deposit" || f.Site != 3 {
		t.Errorf("fault = %+v, want scheduled Deposit at site 3", f)
	}
	if !f.Transient() || !f.PreExecution() {
		t.Error("injected faults must be transient and pre-execution")
	}
	if err := s.Deposit(ctx, "t3", batch, ""); err != nil {
		t.Fatalf("third deposit: %v", err)
	}
	// The faulted call never reached the site: t1 and t3 landed, t2 did not.
	if n := inner.PendingDeposits(); n != 2 {
		t.Errorf("inner buffers %d tasks, want 2 (the faulted deposit must not land)", n)
	}
}

// TestRateFaultsDeterministic pins the seeding contract: two wrappers
// with equal plans inject the same fault sequence for the same call
// sequence. Rate draws charge work methods (Ping is exempt), so the
// sequence is driven through Deposit.
func TestRateFaultsDeterministic(t *testing.T) {
	ctx := context.Background()
	plan := Plan{Seed: 42, Rate: 0.5}
	batch := workload.EMPData()
	run := func() []bool {
		s := Wrap(newInner(), plan)
		out := make([]bool, 100)
		for i := range out {
			out[i] = s.Deposit(ctx, "t", batch, "") != nil
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("equal plans injected different fault sequences")
	}
	faults := 0
	for _, hit := range a {
		if hit {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Errorf("rate 0.5 over 100 calls injected %d faults — draw is not working", faults)
	}
}

// TestRateNeverFaultsPing pins the probe exemption: a rate-1.0 plan
// fails every work call yet never the liveness probe, while an
// explicit err=Ping@n schedule still does — the opt-in contract.
func TestRateNeverFaultsPing(t *testing.T) {
	ctx := context.Background()
	s := Wrap(newInner(), Plan{Seed: 7, Rate: 1.0})
	for i := 0; i < 50; i++ {
		if err := s.Ping(ctx); err != nil {
			t.Fatalf("Ping %d faulted under a pure rate plan: %v", i, err)
		}
	}
	if err := s.Deposit(ctx, "t", workload.EMPData(), ""); err == nil {
		t.Fatal("rate 1.0 must fault every work call")
	}

	sched := Wrap(newInner(), Plan{ErrOn: map[string][]int{"Ping": {2}}})
	if err := sched.Ping(ctx); err != nil {
		t.Fatalf("first Ping should pass: %v", err)
	}
	var f *Fault
	if err := sched.Ping(ctx); !errors.As(err, &f) || f.Reason != "scheduled" {
		t.Fatalf("second Ping should draw the scheduled fault, got %v", err)
	}
}

// TestOverloadFaults: every OverloadEvery-th work call is rejected
// with the typed overloaded error carrying the retry-after hint, and
// the rejection is transient + pre-execution so retries absorb it.
func TestOverloadFaults(t *testing.T) {
	ctx := context.Background()
	inner := newInner()
	s := Wrap(inner, Plan{OverloadEvery: 2, OverloadRetryAfter: 25 * time.Millisecond})
	batch := workload.EMPData()
	if err := s.Deposit(ctx, "t1", batch, ""); err != nil { // call 1 passes
		t.Fatal(err)
	}
	err := s.Deposit(ctx, "t2", batch, "") // call 2 rejected
	var ce *core.CodedError
	if !errors.As(err, &ce) || ce.Code != core.CodeOverloaded {
		t.Fatalf("want a CodeOverloaded rejection, got %v", err)
	}
	if ce.RetryAfter != 25*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 25ms", ce.RetryAfter)
	}
	if !ce.NotExecuted {
		t.Error("an admission rejection provably never ran")
	}
	if err := s.Ping(ctx); err != nil { // overload never hits the probe
		t.Fatalf("Ping under overload: %v", err)
	}
	if n := inner.PendingDeposits(); n != 1 {
		t.Errorf("inner buffers %d tasks, want 1 (the rejected deposit must not land)", n)
	}
}

// TestDrainFaults: once the call counter passes DrainAfter every work
// call is rejected with the typed draining error while Ping keeps
// answering — a gracefully retiring site, not a dead one.
func TestDrainFaults(t *testing.T) {
	ctx := context.Background()
	s := Wrap(newInner(), Plan{DrainAfter: 2})
	batch := workload.EMPData()
	if err := s.Deposit(ctx, "t1", batch, ""); err != nil { // call 1 passes
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		err := s.Deposit(ctx, "t2", batch, "")
		var ce *core.CodedError
		if !errors.As(err, &ce) || ce.Code != core.CodeDraining {
			t.Fatalf("post-drain deposit %d: want CodeDraining, got %v", i, err)
		}
		if !ce.NotExecuted {
			t.Fatal("a drain rejection provably never ran")
		}
	}
	if err := s.Ping(ctx); err != nil {
		t.Fatalf("a draining site must still answer Ping: %v", err)
	}
}

// TestSlowConsumer: SlowOn adds per-method latency without failing the
// call.
func TestSlowConsumer(t *testing.T) {
	ctx := context.Background()
	s := Wrap(newInner(), Plan{SlowOn: map[string]time.Duration{"Deposit": 30 * time.Millisecond}})
	start := time.Now()
	if err := s.Deposit(ctx, "t", workload.EMPData(), ""); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("slow-consumer Deposit took %v, want ≥ 30ms", d)
	}
	start = time.Now()
	if err := s.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	_ = start // Ping latency is timing-dependent; only the slow path is asserted
}

func TestCrashHoldsSiteDownWithoutRebuild(t *testing.T) {
	ctx := context.Background()
	s := Wrap(newInner(), Plan{CrashAt: 1})
	for i := 0; i < 10; i++ {
		err := s.Ping(ctx)
		var f *Fault
		if !errors.As(err, &f) || f.Reason != "crashed" {
			t.Fatalf("call %d: want a crashed fault, got %v", i, err)
		}
	}
	// Identity stays reachable — the cluster must keep existing around a
	// dead site.
	if s.ID() != 3 {
		t.Error("identity accessors must not fault")
	}
}

// TestCrashRestartLosesState: after CrashAt the site fails every call
// until RestartAfter further calls have failed, then rebuild() brings
// it back with fresh state — the deposit landed before the crash is
// gone, exactly like a process restart.
func TestCrashRestartLosesState(t *testing.T) {
	ctx := context.Background()
	rebuilds := 0
	s := WrapRestartable(func() core.SiteAPI {
		rebuilds++
		return newInner()
	}, Plan{CrashAt: 2, RestartAfter: 2})
	first := s.Inner()
	batch := workload.EMPData()
	if err := s.Deposit(ctx, "t1", batch, ""); err != nil { // call 1: lands
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // calls 2, 3: crashed
		err := s.Ping(ctx)
		var f *Fault
		if !errors.As(err, &f) || f.Reason != "crashed" {
			t.Fatalf("down call %d: want a crashed fault, got %v", i, err)
		}
	}
	if err := s.Ping(ctx); err != nil { // call 4: restarted
		t.Fatalf("post-restart call: %v", err)
	}
	if rebuilds != 2 { // once for Wrap, once for the restart
		t.Errorf("rebuild ran %d times, want 2", rebuilds)
	}
	if s.Inner() == first {
		t.Error("restart must replace the inner site")
	}
	if n := s.PendingDeposits(); n != 0 {
		t.Errorf("restarted site still holds %d deposit tasks — state loss is the point", n)
	}
}

// TestWrapListenerResets: every ConnResetEvery-th accepted connection
// dies with a reset after its I/O budget; the others live.
func TestWrapListenerResets(t *testing.T) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	if same := WrapListener(base, Plan{}); same != base {
		t.Error("a plan without a reset schedule must return the listener unchanged")
	}
	lis := WrapListener(base, Plan{ConnResetEvery: 2, ConnResetOps: 4})
	go func() { // echo server over the faulty listener
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(c, c); c.Close() }()
		}
	}()
	roundTrips := func() (int, error) {
		c, err := net.Dial("tcp", base.Addr().String())
		if err != nil {
			return 0, err
		}
		defer c.Close()
		buf := make([]byte, 4)
		for i := 0; i < 10; i++ {
			c.SetDeadline(time.Now().Add(2 * time.Second))
			if _, err := c.Write([]byte("ping")); err != nil {
				return i, err
			}
			if _, err := io.ReadFull(c, buf); err != nil {
				return i, err
			}
		}
		return 10, nil
	}
	if n, err := roundTrips(); n != 10 {
		t.Fatalf("connection 1 should survive, died after %d round trips: %v", n, err)
	}
	if n, err := roundTrips(); err == nil {
		t.Fatalf("connection 2 should be reset after its op budget, survived %d round trips", n)
	} else if n >= 10 {
		t.Fatalf("connection 2 died only after %d round trips", n)
	}
	if n, err := roundTrips(); n != 10 {
		t.Fatalf("connection 3 should survive, died after %d round trips: %v", n, err)
	}
}

// TestLatencySpikes: every LatencyEvery-th faultable call sleeps.
func TestLatencySpikes(t *testing.T) {
	ctx := context.Background()
	s := Wrap(newInner(), Plan{LatencyEvery: 2, Latency: 30 * time.Millisecond})
	start := time.Now()
	if err := s.Ping(ctx); err != nil { // call 1: fast
		t.Fatal(err)
	}
	fast := time.Since(start)
	start = time.Now()
	if err := s.Ping(ctx); err != nil { // call 2: spiked
		t.Fatal(err)
	}
	slow := time.Since(start)
	if slow < 30*time.Millisecond {
		t.Errorf("spiked call took %v, want ≥ 30ms", slow)
	}
	_ = fast // the fast call's duration is timing-dependent; only the spike is asserted
}

func TestFaultErrorMessage(t *testing.T) {
	f := &Fault{Site: 2, Call: 17, Method: "Deposit", Reason: "rate"}
	want := "faulty: injected rate fault at site 2, call 17 (Deposit)"
	if f.Error() != want {
		t.Errorf("Error() = %q, want %q", f.Error(), want)
	}
}
