package faulty

import (
	"context"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"distcfd/internal/core"
	"distcfd/internal/relation"
	"distcfd/internal/workload"
)

func newInner() *core.Site { return core.NewSite(3, workload.EMPData(), relation.True()) }

func TestParseFullSyntax(t *testing.T) {
	got, err := Parse("seed=7, rate=0.1, err=Deposit@3, err=Deposit@5, err=Ping@1, lat=5ms@10, crash=20, restart=5, reset=2@40")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{
		Seed:           7,
		Rate:           0.1,
		ErrOn:          map[string][]int{"Deposit": {3, 5}, "Ping": {1}},
		Latency:        5 * time.Millisecond,
		LatencyEvery:   10,
		CrashAt:        20,
		RestartAfter:   5,
		ConnResetEvery: 2,
		ConnResetOps:   40,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Parse:\n got  %+v\n want %+v", got, want)
	}
	if empty, err := Parse("  "); err != nil || !reflect.DeepEqual(empty, Plan{}) {
		t.Errorf("empty spec should parse to the zero plan, got %+v, %v", empty, err)
	}
}

func TestParseRejectsMalformedSpecs(t *testing.T) {
	for _, bad := range []string{
		"bogus=1",       // unknown key
		"rate",          // not key=value
		"rate=x",        // bad number
		"err=Deposit",   // missing @ordinal
		"err=Deposit@x", // bad ordinal
		"lat=5ms",       // missing @every
		"reset=2",       // missing @ops
		"crash=twenty",  // bad number
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestScheduledFaults(t *testing.T) {
	ctx := context.Background()
	inner := newInner()
	s := Wrap(inner, Plan{ErrOn: map[string][]int{"Deposit": {2}}})
	batch := workload.EMPData()
	if err := s.Deposit(ctx, "t1", batch, ""); err != nil {
		t.Fatalf("first deposit: %v", err)
	}
	err := s.Deposit(ctx, "t2", batch, "")
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("second deposit should fail with a *Fault, got %v", err)
	}
	if f.Reason != "scheduled" || f.Method != "Deposit" || f.Site != 3 {
		t.Errorf("fault = %+v, want scheduled Deposit at site 3", f)
	}
	if !f.Transient() || !f.PreExecution() {
		t.Error("injected faults must be transient and pre-execution")
	}
	if err := s.Deposit(ctx, "t3", batch, ""); err != nil {
		t.Fatalf("third deposit: %v", err)
	}
	// The faulted call never reached the site: t1 and t3 landed, t2 did not.
	if n := inner.PendingDeposits(); n != 2 {
		t.Errorf("inner buffers %d tasks, want 2 (the faulted deposit must not land)", n)
	}
}

// TestRateFaultsDeterministic pins the seeding contract: two wrappers
// with equal plans inject the same fault sequence for the same call
// sequence.
func TestRateFaultsDeterministic(t *testing.T) {
	ctx := context.Background()
	plan := Plan{Seed: 42, Rate: 0.5}
	run := func() []bool {
		s := Wrap(newInner(), plan)
		out := make([]bool, 100)
		for i := range out {
			out[i] = s.Ping(ctx) != nil
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("equal plans injected different fault sequences")
	}
	faults := 0
	for _, hit := range a {
		if hit {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Errorf("rate 0.5 over 100 calls injected %d faults — draw is not working", faults)
	}
}

func TestCrashHoldsSiteDownWithoutRebuild(t *testing.T) {
	ctx := context.Background()
	s := Wrap(newInner(), Plan{CrashAt: 1})
	for i := 0; i < 10; i++ {
		err := s.Ping(ctx)
		var f *Fault
		if !errors.As(err, &f) || f.Reason != "crashed" {
			t.Fatalf("call %d: want a crashed fault, got %v", i, err)
		}
	}
	// Identity stays reachable — the cluster must keep existing around a
	// dead site.
	if s.ID() != 3 {
		t.Error("identity accessors must not fault")
	}
}

// TestCrashRestartLosesState: after CrashAt the site fails every call
// until RestartAfter further calls have failed, then rebuild() brings
// it back with fresh state — the deposit landed before the crash is
// gone, exactly like a process restart.
func TestCrashRestartLosesState(t *testing.T) {
	ctx := context.Background()
	rebuilds := 0
	s := WrapRestartable(func() core.SiteAPI {
		rebuilds++
		return newInner()
	}, Plan{CrashAt: 2, RestartAfter: 2})
	first := s.Inner()
	batch := workload.EMPData()
	if err := s.Deposit(ctx, "t1", batch, ""); err != nil { // call 1: lands
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // calls 2, 3: crashed
		err := s.Ping(ctx)
		var f *Fault
		if !errors.As(err, &f) || f.Reason != "crashed" {
			t.Fatalf("down call %d: want a crashed fault, got %v", i, err)
		}
	}
	if err := s.Ping(ctx); err != nil { // call 4: restarted
		t.Fatalf("post-restart call: %v", err)
	}
	if rebuilds != 2 { // once for Wrap, once for the restart
		t.Errorf("rebuild ran %d times, want 2", rebuilds)
	}
	if s.Inner() == first {
		t.Error("restart must replace the inner site")
	}
	if n := s.PendingDeposits(); n != 0 {
		t.Errorf("restarted site still holds %d deposit tasks — state loss is the point", n)
	}
}

// TestWrapListenerResets: every ConnResetEvery-th accepted connection
// dies with a reset after its I/O budget; the others live.
func TestWrapListenerResets(t *testing.T) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	if same := WrapListener(base, Plan{}); same != base {
		t.Error("a plan without a reset schedule must return the listener unchanged")
	}
	lis := WrapListener(base, Plan{ConnResetEvery: 2, ConnResetOps: 4})
	go func() { // echo server over the faulty listener
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(c, c); c.Close() }()
		}
	}()
	roundTrips := func() (int, error) {
		c, err := net.Dial("tcp", base.Addr().String())
		if err != nil {
			return 0, err
		}
		defer c.Close()
		buf := make([]byte, 4)
		for i := 0; i < 10; i++ {
			c.SetDeadline(time.Now().Add(2 * time.Second))
			if _, err := c.Write([]byte("ping")); err != nil {
				return i, err
			}
			if _, err := io.ReadFull(c, buf); err != nil {
				return i, err
			}
		}
		return 10, nil
	}
	if n, err := roundTrips(); n != 10 {
		t.Fatalf("connection 1 should survive, died after %d round trips: %v", n, err)
	}
	if n, err := roundTrips(); err == nil {
		t.Fatalf("connection 2 should be reset after its op budget, survived %d round trips", n)
	} else if n >= 10 {
		t.Fatalf("connection 2 died only after %d round trips", n)
	}
	if n, err := roundTrips(); n != 10 {
		t.Fatalf("connection 3 should survive, died after %d round trips: %v", n, err)
	}
}

// TestLatencySpikes: every LatencyEvery-th faultable call sleeps.
func TestLatencySpikes(t *testing.T) {
	ctx := context.Background()
	s := Wrap(newInner(), Plan{LatencyEvery: 2, Latency: 30 * time.Millisecond})
	start := time.Now()
	if err := s.Ping(ctx); err != nil { // call 1: fast
		t.Fatal(err)
	}
	fast := time.Since(start)
	start = time.Now()
	if err := s.Ping(ctx); err != nil { // call 2: spiked
		t.Fatal(err)
	}
	slow := time.Since(start)
	if slow < 30*time.Millisecond {
		t.Errorf("spiked call took %v, want ≥ 30ms", slow)
	}
	_ = fast // the fast call's duration is timing-dependent; only the spike is asserted
}

func TestFaultErrorMessage(t *testing.T) {
	f := &Fault{Site: 2, Call: 17, Method: "Deposit", Reason: "rate"}
	want := "faulty: injected rate fault at site 2, call 17 (Deposit)"
	if f.Error() != want {
		t.Errorf("Error() = %q, want %q", f.Error(), want)
	}
}
