package faulty

import (
	"net"
	"sync"
	"syscall"
)

// WrapListener injects connection-level faults per the plan's
// reset schedule: every ConnResetEvery-th accepted connection dies
// with ECONNRESET after ConnResetOps reads+writes, mid-stream — the
// shape a dropped peer or a flapping network presents. A plan without
// a reset schedule returns lis unchanged.
func WrapListener(lis net.Listener, plan Plan) net.Listener {
	if plan.ConnResetEvery <= 0 {
		return lis
	}
	return &listener{Listener: lis, plan: plan}
}

type listener struct {
	net.Listener
	plan Plan

	mu    sync.Mutex
	conns int
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.conns++
	doomed := l.conns%l.plan.ConnResetEvery == 0
	l.mu.Unlock()
	if !doomed {
		return c, nil
	}
	return &conn{Conn: c, budget: l.plan.ConnResetOps}, nil
}

// conn counts I/O operations and, once past its budget, closes the
// underlying connection and fails every further operation with
// ECONNRESET. Closing (not just erroring) matters: the peer sees the
// reset too, which is what a real mid-deposit connection loss does.
type conn struct {
	net.Conn

	mu     sync.Mutex
	ops    int
	budget int
	dead   bool
}

func (c *conn) spend() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops++
	if !c.dead && c.ops > c.budget {
		c.dead = true
		c.Conn.Close()
	}
	return c.dead
}

func (c *conn) Read(p []byte) (int, error) {
	if c.spend() {
		return 0, syscall.ECONNRESET
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	if c.spend() {
		return 0, syscall.ECONNRESET
	}
	return c.Conn.Write(p)
}
