package exp

import (
	"context"
	"fmt"
	"io"

	"distcfd/internal/cfd"
	"distcfd/internal/core"
	"distcfd/internal/partition"
	"distcfd/internal/relation"
	"distcfd/internal/workload"
)

// siteSweep is the paper's 2–8 site range.
var siteSweep = []int{2, 3, 4, 5, 6, 7, 8}

func clusterFor(d *relation.Relation, sites int, seed int64) (*core.Cluster, error) {
	h, err := partition.Uniform(d, sites, seed)
	if err != nil {
		return nil, err
	}
	return core.FromHorizontal(h)
}

// Exp1Cust reproduces Fig 3(a): response time vs #sites on cust8 for
// the three single-CFD algorithms (CFD: 4 attributes, 255 patterns).
func Exp1Cust(cfg Config) (*Series, error) {
	cfg = cfg.withDefaults()
	d := workload.Cust(workload.CustConfig{N: cfg.size(SizeCust8), Seed: cfg.Seed, ErrRate: cfg.ErrRate})
	rule := workload.CustPatternCFD(255)
	return sweepSitesSingle(cfg, d, rule,
		"Fig 3(a)", "Exp-1: scalability with |S| (cust8), CFD with 255 patterns")
}

// Exp1Xref reproduces Fig 3(b): the same sweep on xref8 (CFD: 5
// attributes, 11 patterns).
func Exp1Xref(cfg Config) (*Series, error) {
	cfg = cfg.withDefaults()
	d := workload.XRef(workload.XRefConfig{N: cfg.size(SizeXref8), Seed: cfg.Seed, ErrRate: cfg.ErrRate})
	return sweepSitesSingle(cfg, d, workload.XRefCFD(),
		"Fig 3(b)", "Exp-1: scalability with |S| (xref8), CFD with 11 patterns")
}

func sweepSitesSingle(cfg Config, d *relation.Relation, rule *cfd.CFD, figure, title string) (*Series, error) {
	s := &Series{
		Figure:  figure,
		Title:   title,
		XLabel:  "sites",
		Unit:    "modeled response time cost(D,Σ,M)",
		Columns: []string{"CTRDetect", "PatDetectS", "PatDetectRT"},
	}
	for _, n := range siteSweep {
		cl, err := clusterFor(d, n, cfg.Seed)
		if err != nil {
			return nil, err
		}
		row := make([]float64, 0, 3)
		for _, algo := range []core.Algorithm{core.CTRDetect, core.PatDetectS, core.PatDetectRT} {
			res, err := core.DetectSingle(cl, rule, algo, core.Options{Cost: cfg.Cost})
			if err != nil {
				return nil, err
			}
			row = append(row, res.ModeledTime)
		}
		s.XS = append(s.XS, float64(n))
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// Exp2 reproduces Fig 3(c): response time vs |D| (10%–100% of cust16
// across 8 sites) for CTRDetect and PatDetectRT.
func Exp2(cfg Config) (*Series, error) {
	cfg = cfg.withDefaults()
	full := workload.Cust(workload.CustConfig{N: cfg.size(SizeCust16), Seed: cfg.Seed, ErrRate: cfg.ErrRate})
	rule := workload.CustPatternCFD(255)
	s := &Series{
		Figure:  "Fig 3(c)",
		Title:   "Exp-2: scalability with |D| (cust16, 8 sites)",
		XLabel:  "tuples",
		Unit:    "modeled response time cost(D,Σ,M)",
		Columns: []string{"CTRDetect", "PatDetectRT"},
	}
	for pct := 10; pct <= 100; pct += 10 {
		n := full.Len() * pct / 100
		part, err := relation.FromTuples(full.Schema(), full.Tuples()[:n])
		if err != nil {
			return nil, err
		}
		cl, err := clusterFor(part, 8, cfg.Seed)
		if err != nil {
			return nil, err
		}
		row := make([]float64, 0, 2)
		for _, algo := range []core.Algorithm{core.CTRDetect, core.PatDetectRT} {
			res, err := core.DetectSingle(cl, rule, algo, core.Options{Cost: cfg.Cost})
			if err != nil {
				return nil, err
			}
			row = append(row, res.ModeledTime)
		}
		s.XS = append(s.XS, float64(n))
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// Exp3 reproduces Fig 3(d): response time vs pattern tableau size
// (cust8, 8 sites) for CTRDetect and PatDetectRT.
func Exp3(cfg Config) (*Series, error) {
	cfg = cfg.withDefaults()
	d := workload.Cust(workload.CustConfig{N: cfg.size(SizeCust8), Seed: cfg.Seed, ErrRate: cfg.ErrRate})
	cl, err := clusterFor(d, 8, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s := &Series{
		Figure:  "Fig 3(d)",
		Title:   "Exp-3: scalability with |Tp| (cust8, 8 sites)",
		XLabel:  "patterns",
		Unit:    "modeled response time cost(D,Σ,M)",
		Columns: []string{"CTRDetect", "PatDetectRT"},
	}
	for _, k := range []int{50, 100, 150, 200, 250} {
		rule := workload.CustPatternCFD(k)
		row := make([]float64, 0, 2)
		for _, algo := range []core.Algorithm{core.CTRDetect, core.PatDetectRT} {
			res, err := core.DetectSingle(cl, rule, algo, core.Options{Cost: cfg.Cost})
			if err != nil {
				return nil, err
			}
			row = append(row, res.ModeledTime)
		}
		s.XS = append(s.XS, float64(k))
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// Exp4 reproduces Fig 3(e): total data shipment vs mining frequency
// threshold θ on xrefH (human-only data, 7 fragments by reference
// type) for PatDetectS with and without the mining preprocessing.
func Exp4(cfg Config) (*Series, error) {
	cfg = cfg.withDefaults()
	d := workload.XRefHuman(cfg.size(SizeXrefH), cfg.Seed)
	// Fragment by curation batch ("type of the references"): strongly
	// but imperfectly correlated with the FD's external_db attribute.
	h, err := partition.ByAttribute(d, "source")
	if err != nil {
		return nil, err
	}
	// The paper's fragments are given by reference type; predicates are
	// dropped so pruning does not mask the mining effect.
	h.Predicates = nil
	cl, err := core.FromHorizontal(h)
	if err != nil {
		return nil, err
	}
	rule := workload.XRefMiningFD()
	s := &Series{
		Figure:  "Fig 3(e)",
		Title:   "Exp-4: impact of mining on shipment (xrefH, FD, 7 fragments)",
		XLabel:  "theta",
		Unit:    "tuples shipped",
		Columns: []string{"PatDetectS", "PatDetectS+mining"},
	}
	plain, err := core.DetectSingle(cl, rule, core.PatDetectS, core.Options{Cost: cfg.Cost})
	if err != nil {
		return nil, err
	}
	for _, theta := range []float64{0.01, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		mined, err := core.DetectSingle(cl, rule, core.PatDetectS,
			core.Options{Cost: cfg.Cost, MineTheta: theta})
		if err != nil {
			return nil, err
		}
		s.XS = append(s.XS, theta)
		s.Rows = append(s.Rows, []float64{float64(plain.ShippedTuples), float64(mined.ShippedTuples)})
	}
	return s, nil
}

// exp5Sweep runs SeqDetect vs ClustDetect across the site sweep,
// reporting the chosen metric.
func exp5Sweep(cfg Config, d *relation.Relation, cfds []*cfd.CFD, figure, title, unit string,
	metric func(*core.SetResult) float64) (*Series, error) {
	s := &Series{
		Figure:  figure,
		Title:   title,
		XLabel:  "sites",
		Unit:    unit,
		Columns: []string{"SeqDetect", "ClustDetect"},
	}
	for _, n := range siteSweep {
		cl, err := clusterFor(d, n, cfg.Seed)
		if err != nil {
			return nil, err
		}
		seq, err := core.SeqDetect(cl, cfds, core.PatDetectRT, core.Options{Cost: cfg.Cost})
		if err != nil {
			return nil, err
		}
		clu, err := core.ClustDetect(cl, cfds, core.PatDetectRT, core.Options{Cost: cfg.Cost})
		if err != nil {
			return nil, err
		}
		s.XS = append(s.XS, float64(n))
		s.Rows = append(s.Rows, []float64{metric(seq), metric(clu)})
	}
	return s, nil
}

// Exp5ShipXref reproduces Fig 3(f): tuples shipped vs #sites for the
// two overlapping XREF CFDs.
func Exp5ShipXref(cfg Config) (*Series, error) {
	cfg = cfg.withDefaults()
	d := workload.XRef(workload.XRefConfig{N: cfg.size(SizeXref8), Seed: cfg.Seed, ErrRate: cfg.ErrRate})
	return exp5Sweep(cfg, d, []*cfd.CFD{workload.XRefCFD(), workload.XRefCFD2()},
		"Fig 3(f)", "Exp-5: shipment with |S|, multiple CFDs (xref8)", "tuples shipped",
		func(r *core.SetResult) float64 { return float64(r.ShippedTuples) })
}

// Exp5TimeXref reproduces Fig 3(g): response time vs #sites (xref8).
func Exp5TimeXref(cfg Config) (*Series, error) {
	cfg = cfg.withDefaults()
	d := workload.XRef(workload.XRefConfig{N: cfg.size(SizeXref8), Seed: cfg.Seed, ErrRate: cfg.ErrRate})
	return exp5Sweep(cfg, d, []*cfd.CFD{workload.XRefCFD(), workload.XRefCFD2()},
		"Fig 3(g)", "Exp-5: scalability with |S|, multiple CFDs (xref8)",
		"modeled response time cost(D,Σ,M)",
		func(r *core.SetResult) float64 { return r.ModeledTime })
}

// Exp5TimeCust reproduces Fig 3(h): response time vs #sites (cust8).
func Exp5TimeCust(cfg Config) (*Series, error) {
	cfg = cfg.withDefaults()
	d := workload.Cust(workload.CustConfig{N: cfg.size(SizeCust8), Seed: cfg.Seed, ErrRate: cfg.ErrRate})
	return exp5Sweep(cfg, d, workload.CustOverlappingCFDs(255, 128),
		"Fig 3(h)", "Exp-5: scalability with |S|, multiple CFDs (cust8)",
		"modeled response time cost(D,Σ,M)",
		func(r *core.SetResult) float64 { return r.ModeledTime })
}

// Exp6 reproduces Fig 3(i): response time vs |D| (cust16, 8 sites)
// for the multi-CFD algorithms.
func Exp6(cfg Config) (*Series, error) {
	cfg = cfg.withDefaults()
	full := workload.Cust(workload.CustConfig{N: cfg.size(SizeCust16), Seed: cfg.Seed, ErrRate: cfg.ErrRate})
	cfds := workload.CustOverlappingCFDs(255, 128)
	s := &Series{
		Figure:  "Fig 3(i)",
		Title:   "Exp-6: scalability with |D|, multiple CFDs (cust16, 8 sites)",
		XLabel:  "tuples",
		Unit:    "modeled response time cost(D,Σ,M)",
		Columns: []string{"SeqDetect", "ClustDetect"},
	}
	for pct := 10; pct <= 100; pct += 10 {
		n := full.Len() * pct / 100
		part, err := relation.FromTuples(full.Schema(), full.Tuples()[:n])
		if err != nil {
			return nil, err
		}
		cl, err := clusterFor(part, 8, cfg.Seed)
		if err != nil {
			return nil, err
		}
		seq, err := core.SeqDetect(cl, cfds, core.PatDetectRT, core.Options{Cost: cfg.Cost})
		if err != nil {
			return nil, err
		}
		clu, err := core.ClustDetect(cl, cfds, core.PatDetectRT, core.Options{Cost: cfg.Cost})
		if err != nil {
			return nil, err
		}
		s.XS = append(s.XS, float64(n))
		s.Rows = append(s.Rows, []float64{seq.ModeledTime, clu.ModeledTime})
	}
	return s, nil
}

// ExpIncremental is the beyond-the-paper panel of the incremental
// subsystem: tuples actually shipped per detection round as a function
// of |ΔD|/|D| (cust8, 4 sites, the overlapping CFD pair), fed by the
// same seeded delta streams the benchmarks and the property tests use.
// The full-recompute column is the equivalent channel the incremental
// result reports — byte-identical to a fresh Detect on the mutated
// cluster — so the two lines share one ground truth.
func ExpIncremental(cfg Config) (*Series, error) {
	cfg = cfg.withDefaults()
	d := workload.Cust(workload.CustConfig{N: cfg.size(SizeCust8), Seed: cfg.Seed, ErrRate: cfg.ErrRate})
	cfds := workload.CustOverlappingCFDs(128, 64)
	s := &Series{
		Figure:  "Inc",
		Title:   "Incremental: tuples shipped per round vs |ΔD|/|D| (cust8, 4 sites)",
		XLabel:  "delta fraction (%)",
		Unit:    "tuples shipped per detection round",
		Columns: []string{"incremental (delta channel)", "full recompute"},
	}
	for _, frac := range []float64{0.001, 0.005, 0.01, 0.05, 0.1} {
		h, err := partition.Uniform(d.Clone(), 4, cfg.Seed)
		if err != nil {
			return nil, err
		}
		cl, err := core.FromHorizontal(h)
		if err != nil {
			return nil, err
		}
		//distcfd:ctxflow-ok — CLI experiment harness; no caller context exists
		p, err := core.CompileSet(context.Background(), cl, cfds, core.PatDetectRT, core.Options{Cost: cfg.Cost}, true)
		if err != nil {
			return nil, err
		}
		//distcfd:ctxflow-ok — CLI experiment harness; no caller context exists
		if _, err := p.DetectIncremental(context.Background()); err != nil { // seed round
			return nil, err
		}
		perSite := int(float64(d.Len()) * frac / 4)
		if perSite < 4 {
			perSite = 4
		}
		streams := workload.SplitStreams(h.Fragments,
			workload.DeltaConfig{Seed: cfg.Seed, Inserts: perSite / 2, Updates: perSite / 4, Deletes: perSite / 4, ErrRate: cfg.ErrRate},
			func(f *relation.Relation, c workload.DeltaConfig) *workload.DeltaStream {
				return workload.CustDeltaStream(f, c)
			})
		deltas := make(map[int]relation.Delta, len(streams))
		for i, ds := range streams {
			deltas[i] = ds.Next()
		}
		//distcfd:ctxflow-ok — CLI experiment harness; no caller context exists
		res, err := p.DetectDelta(context.Background(), deltas)
		if err != nil {
			return nil, err
		}
		s.XS = append(s.XS, frac*100)
		s.Rows = append(s.Rows, []float64{float64(res.DeltaShippedTuples), float64(res.ShippedTuples)})
	}
	return s, nil
}

// All lists the experiment drivers keyed by figure.
func All() []struct {
	Name string
	Run  func(Config) (*Series, error)
} {
	return []struct {
		Name string
		Run  func(Config) (*Series, error)
	}{
		{"3a", Exp1Cust},
		{"3b", Exp1Xref},
		{"3c", Exp2},
		{"3d", Exp3},
		{"3e", Exp4},
		{"3f", Exp5ShipXref},
		{"3g", Exp5TimeXref},
		{"3h", Exp5TimeCust},
		{"3i", Exp6},
		{"inc", ExpIncremental},
	}
}

// RunAll executes every experiment and prints each series to w.
func RunAll(cfg Config, w io.Writer) ([]*Series, error) {
	var out []*Series
	for _, e := range All() {
		s, err := e.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("exp %s: %w", e.Name, err)
		}
		s.Print(w)
		out = append(out, s)
	}
	return out, nil
}
