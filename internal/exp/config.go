// Package exp is the experiment harness: one driver per experiment of
// Section VI, each regenerating the series of a Figure 3 panel. Time
// figures report the paper's modeled response time cost(D, Σ, M)
// (deterministic, machine-independent; see DESIGN.md); shipment
// figures report exact tuple counts. Sizes default to 1/10 of the
// paper's (the Scale knob restores them).
package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"distcfd/internal/dist"
)

// Config parameterizes a harness run.
type Config struct {
	// Scale multiplies the paper's dataset sizes (default 0.1; 1.0
	// reproduces the full 800K/1.6M/2.7M-tuple runs).
	Scale float64
	// Seed drives data generation and uniform partitioning.
	Seed int64
	// Cost is the response-time model (zero → dist.DefaultCostModel).
	Cost dist.CostModel
	// ErrRate is the injected-inconsistency rate (default 0.01).
	ErrRate float64
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.1
	}
	if c.Cost == (dist.CostModel{}) {
		c.Cost = dist.DefaultCostModel()
	}
	if c.ErrRate == 0 {
		c.ErrRate = 0.01
	}
	return c
}

// Paper dataset sizes (tuples) at Scale = 1.0.
const (
	SizeCust8  = 800_000
	SizeCust16 = 1_600_000
	SizeXref8  = 800_000
	SizeXrefH  = 2_700_000
)

func (c Config) size(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 100 {
		n = 100
	}
	return n
}

// Series is one figure panel: an x-axis sweep with one column per
// algorithm/variant.
type Series struct {
	// Figure names the reproduced panel, e.g. "Fig 3(a)".
	Figure string
	// Title describes the experiment.
	Title string
	// XLabel and Unit label the axes.
	XLabel string
	Unit   string
	// Columns are the plotted lines.
	Columns []string
	// XS are the x values; Rows[i][j] is column j at XS[i].
	XS   []float64
	Rows [][]float64
}

// Print renders the series as an aligned text table.
func (s *Series) Print(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", s.Figure, s.Title)
	fmt.Fprintf(w, "  unit: %s\n", s.Unit)
	header := fmt.Sprintf("  %-14s", s.XLabel)
	for _, c := range s.Columns {
		header += fmt.Sprintf(" %16s", c)
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, "  "+strings.Repeat("-", len(header)-2))
	for i, x := range s.XS {
		row := fmt.Sprintf("  %-14.4g", x)
		for _, v := range s.Rows[i] {
			row += fmt.Sprintf(" %16.4f", v)
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintln(w)
}

// WriteCSV emits the series as CSV (x column first) for external
// plotting tools.
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{s.XLabel}, s.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, x := range s.XS {
		row := make([]string, 0, len(s.Columns)+1)
		row = append(row, strconv.FormatFloat(x, 'g', -1, 64))
		for _, v := range s.Rows[i] {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Col returns the values of the named column.
func (s *Series) Col(name string) []float64 {
	for j, c := range s.Columns {
		if c == name {
			out := make([]float64, len(s.Rows))
			for i := range s.Rows {
				out[i] = s.Rows[i][j]
			}
			return out
		}
	}
	return nil
}
