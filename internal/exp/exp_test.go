package exp

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests while
// keeping the shape-producing structure.
func tiny() Config {
	return Config{Scale: 0.004, Seed: 42, ErrRate: 0.02}
}

func last(xs []float64) float64 { return xs[len(xs)-1] }

func TestExp1CustShapes(t *testing.T) {
	s, err := Exp1Cust(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.XS) != 7 || len(s.Columns) != 3 {
		t.Fatalf("series shape: %d × %d", len(s.XS), len(s.Columns))
	}
	ctr, rt := s.Col("CTRDetect"), s.Col("PatDetectRT")
	// Paper: response time decreases as |S| grows.
	if last(ctr) >= ctr[0] {
		t.Errorf("CTRDetect did not decrease with sites: %v", ctr)
	}
	if last(rt) >= rt[0] {
		t.Errorf("PatDetectRT did not decrease with sites: %v", rt)
	}
	// Paper: CTRDetect is outperformed by the pattern algorithms.
	for i := range s.XS {
		if rt[i] > ctr[i] {
			t.Errorf("at %v sites PatDetectRT (%.3f) above CTRDetect (%.3f)",
				s.XS[i], rt[i], ctr[i])
		}
	}
}

func TestExp1XrefShapes(t *testing.T) {
	s, err := Exp1Xref(tiny())
	if err != nil {
		t.Fatal(err)
	}
	ctr, rt := s.Col("CTRDetect"), s.Col("PatDetectRT")
	if last(ctr) >= ctr[0] || last(rt) >= rt[0] {
		t.Errorf("times did not decrease: ctr=%v rt=%v", ctr, rt)
	}
}

func TestExp2LinearInData(t *testing.T) {
	s, err := Exp2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"CTRDetect", "PatDetectRT"} {
		v := s.Col(col)
		// Monotone growth.
		for i := 1; i < len(v); i++ {
			if v[i] < v[i-1]*0.95 {
				t.Errorf("%s not increasing with |D|: %v", col, v)
				break
			}
		}
		// Near-linear: 10x data within [5x, 20x] cost.
		ratio := last(v) / v[0]
		if ratio < 5 || ratio > 20 {
			t.Errorf("%s 10x-data cost ratio %.1f outside [5,20]: %v", col, ratio, v)
		}
	}
	// PatDetectRT at least 2x faster at the largest size (paper).
	if last(s.Col("CTRDetect")) < 1.5*last(s.Col("PatDetectRT")) {
		t.Errorf("CTR/PatRT gap too small at max |D|: %v vs %v",
			last(s.Col("CTRDetect")), last(s.Col("PatDetectRT")))
	}
}

func TestExp3GrowsWithTableau(t *testing.T) {
	s, err := Exp3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"CTRDetect", "PatDetectRT"} {
		v := s.Col(col)
		if last(v) <= v[0] {
			t.Errorf("%s did not grow with |Tp|: %v", col, v)
		}
	}
	ctr, rt := s.Col("CTRDetect"), s.Col("PatDetectRT")
	for i := range ctr {
		if rt[i] > ctr[i] {
			t.Errorf("PatDetectRT above CTRDetect at k=%v", s.XS[i])
		}
	}
}

func TestExp4MiningReducesShipment(t *testing.T) {
	s, err := Exp4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	plain, mined := s.Col("PatDetectS"), s.Col("PatDetectS+mining")
	// Plain is a flat baseline (no θ dependence).
	for i := 1; i < len(plain); i++ {
		if plain[i] != plain[0] {
			t.Errorf("plain shipment should not depend on θ: %v", plain)
			break
		}
	}
	// At small θ mining reduces shipment substantially (paper: up to
	// ~80%); here external_db is one of the two FD attributes, so the
	// by-type fragmentation keeps mined blocks largely local.
	if mined[0] > 0.5*plain[0] {
		t.Errorf("mining at θ=%.2f saved too little: %v vs %v", s.XS[0], mined[0], plain[0])
	}
	// Mining never ships more than plain.
	for i := range mined {
		if mined[i] > plain[i] {
			t.Errorf("mining increased shipment at θ=%.2f", s.XS[i])
		}
	}
	// Benefit fades as θ grows (fewer frequent patterns survive); by
	// θ = 1.0 no pattern is mined and shipment returns to the baseline.
	if last(mined) < mined[0] {
		t.Errorf("mining benefit should fade with θ: %v", mined)
	}
	if last(mined) < 0.9*last(plain) {
		t.Errorf("at θ=1.0 mining should match the baseline: %v vs %v", last(mined), last(plain))
	}
}

func TestExp5ClustBeatsSeq(t *testing.T) {
	s, err := Exp5ShipXref(tiny())
	if err != nil {
		t.Fatal(err)
	}
	seq, clu := s.Col("SeqDetect"), s.Col("ClustDetect")
	for i := range seq {
		if clu[i] > seq[i] {
			t.Errorf("ClustDetect shipped more at %v sites: %v > %v", s.XS[i], clu[i], seq[i])
		}
	}
	// The gap is substantial (paper: ≥100K tuples at full scale).
	if clu[len(clu)-1] > 0.8*seq[len(seq)-1] {
		t.Errorf("shipment gap too small: clust=%v seq=%v", clu, seq)
	}

	g, err := Exp5TimeXref(tiny())
	if err != nil {
		t.Fatal(err)
	}
	seqT, cluT := g.Col("SeqDetect"), g.Col("ClustDetect")
	for i := range seqT {
		if cluT[i] > seqT[i]*1.05 {
			t.Errorf("ClustDetect slower at %v sites: %v > %v", g.XS[i], cluT[i], seqT[i])
		}
	}
}

func TestExp6ClustBeatsSeqAcrossSizes(t *testing.T) {
	s, err := Exp6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	seq, clu := s.Col("SeqDetect"), s.Col("ClustDetect")
	for i := range seq {
		if clu[i] > seq[i]*1.05 {
			t.Errorf("ClustDetect slower at %v tuples", s.XS[i])
		}
	}
	if last(seq) <= seq[0] {
		t.Errorf("SeqDetect not growing with |D|: %v", seq)
	}
}

func TestSeriesPrint(t *testing.T) {
	s := &Series{
		Figure: "Fig X", Title: "t", XLabel: "x", Unit: "u",
		Columns: []string{"a", "b"},
		XS:      []float64{1, 2},
		Rows:    [][]float64{{1, 2}, {3, 4}},
	}
	var buf bytes.Buffer
	s.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Fig X", "unit: u", "a", "b"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print missing %q:\n%s", want, out)
		}
	}
	if s.Col("missing") != nil {
		t.Error("Col of unknown column should be nil")
	}
}

func TestSeriesWriteCSV(t *testing.T) {
	s := &Series{
		Figure: "Fig X", Title: "t", XLabel: "sites", Unit: "u",
		Columns: []string{"a", "b"},
		XS:      []float64{2, 4},
		Rows:    [][]float64{{1.5, 2}, {3, 4.25}},
	}
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "sites,a,b\n2,1.5,2\n4,3,4.25\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestRunAllTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow in -short mode")
	}
	var buf bytes.Buffer
	series, err := RunAll(Config{Scale: 0.002, Seed: 1, ErrRate: 0.02}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 10 {
		t.Errorf("RunAll produced %d series, want 10", len(series))
	}
	for _, fig := range []string{"3(a)", "3(b)", "3(c)", "3(d)", "3(e)", "3(f)", "3(g)", "3(h)", "3(i)", "Inc"} {
		if !strings.Contains(buf.String(), fig) {
			t.Errorf("output missing figure %s", fig)
		}
	}
}

func TestExpIncrementalShape(t *testing.T) {
	s, err := ExpIncremental(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.XS) != 5 || len(s.Columns) != 2 {
		t.Fatalf("series shape: %d × %d", len(s.XS), len(s.Columns))
	}
	inc, full := s.Col("incremental (delta channel)"), s.Col("full recompute")
	// The delta channel undercuts the full recompute at every fraction
	// and by ≥5× at the smallest ones (the acceptance floor is at 1%).
	for i := range s.XS {
		if inc[i] >= full[i] {
			t.Errorf("at ΔD=%.1f%% incremental shipped %.0f ≥ full %.0f", s.XS[i], inc[i], full[i])
		}
	}
	if inc[0]*5 > full[0] {
		t.Errorf("at the smallest ΔD the saving is below 5×: %v vs %v", inc[0], full[0])
	}
	// The delta channel grows with |ΔD|.
	if last(inc) <= inc[0] {
		t.Errorf("delta shipments do not grow with ΔD: %v", inc)
	}
}
