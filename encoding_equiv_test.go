package distcfd

// Cross-representation equivalence: the dictionary-encoded execution
// path (engine.Detect/DetectSet, BlockSpec.AssignAll) must agree, bit
// for bit, with the row-oriented string-key path (engine.DetectRows /
// per-tuple BlockSpec.Assign) and with the naive oracle, over the
// repo's three workloads plus adversarial values sitting next to the
// 0x1f key separator of the row path.

import (
	"testing"

	"distcfd/internal/cfd"
	"distcfd/internal/core"
	"distcfd/internal/engine"
	"distcfd/internal/partition"
	"distcfd/internal/relation"
	"distcfd/internal/workload"
)

// equivSamples returns named (relation, CFD set) pairs covering EMP,
// CUST and XREF, each with extra tuples whose values contain bytes
// adjacent to the 0x1f separator (0x1e, 0x20), multi-byte runes, and
// empty strings.
func equivSamples(tb testing.TB) []struct {
	name string
	d    *relation.Relation
	cfds []*cfd.CFD
} {
	tb.Helper()
	// EMP attrs: id, name, title, CC, AC, phn, street, city, zip, salary.
	emp := workload.EMPData()
	emp.MustAppend(relation.Tuple{"11", ": ,™", "MTS\x1e", "01\x1e", "908", "2909209", "Mtn\x20Ave", "NYC", "07974", ""})
	emp.MustAppend(relation.Tuple{"12", "", "MTS\x1e", "01", "\x1e908", "2909209", "Mtn\x20Ave", "NYC", "07974", "80k"})

	// CUST attrs: id, name, CC, AC, phn, street, city, zip, title, price, qty.
	cust := workload.Cust(workload.CustConfig{N: 4_000, Seed: 7, ErrRate: 0.02})
	cust.MustAppend(relation.Tuple{"x1", "n\x1en", "44\x1e", "4408", "", "street \x1e1", "city™", "zip\x201", "t1", "9.9", "1"})
	cust.MustAppend(relation.Tuple{"x2", "n\x1en", "44", "\x1e4408", "ph", "street \x1e1", "city™", "zip\x202", "t1", "8.5", "2"})
	cust.MustAppend(relation.Tuple{"x3", "n\x20n", "44\x1e", "4408", "", "street 2", "city™", "zip\x201", "t2", "7", "3"})

	xref := workload.XRef(workload.XRefConfig{N: 4_000, Seed: 11, ErrRate: 0.02})

	return []struct {
		name string
		d    *relation.Relation
		cfds []*cfd.CFD
	}{
		{"EMP", emp, workload.EMPCFDs()},
		{"CUST", cust, []*cfd.CFD{
			workload.CustPatternCFD(32),
			workload.CustStreetCFD(),
			cfd.MustParse(`e1: [name] -> [phn]`),
			cfd.MustParse(`e2: [street, city] -> [zip]`),
		}},
		{"XREF", xref, []*cfd.CFD{workload.XRefCFD(), workload.XRefCFD2(), workload.XRefMiningFD()}},
	}
}

func TestEncodedDetectMatchesRowPath(t *testing.T) {
	for _, sample := range equivSamples(t) {
		t.Run(sample.name, func(t *testing.T) {
			for _, c := range sample.cfds {
				encoded, err := engine.Detect(sample.d, c)
				if err != nil {
					t.Fatalf("%s: encoded: %v", c.Name, err)
				}
				rows, err := engine.DetectRows(sample.d, c)
				if err != nil {
					t.Fatalf("%s: rows: %v", c.Name, err)
				}
				if !equalInts(encoded, rows) {
					t.Errorf("%s: encoded path found %d violations, row path %d",
						c.Name, len(encoded), len(rows))
				}
				// The naive oracle is quadratic; spot-check small inputs only.
				if sample.d.Len() <= 100 {
					naive, err := cfd.NaiveViolations(sample.d, c)
					if err != nil {
						t.Fatal(err)
					}
					if !equalInts(encoded, naive) {
						t.Errorf("%s: encoded path disagrees with naive oracle", c.Name)
					}
				}
			}
			encSet, err := engine.DetectSet(sample.d, sample.cfds)
			if err != nil {
				t.Fatal(err)
			}
			rowSet, err := engine.DetectSetRows(sample.d, sample.cfds)
			if err != nil {
				t.Fatal(err)
			}
			if !equalInts(encSet, rowSet) {
				t.Errorf("DetectSet: encoded %d violations, rows %d", len(encSet), len(rowSet))
			}
		})
	}
}

// TestEncodedSigmaMatchesRowPath pins the σ-routing equivalence: the
// single-pass encoded AssignAll must agree with the per-tuple
// string-key Assign for every tuple of every sample.
func TestEncodedSigmaMatchesRowPath(t *testing.T) {
	for _, sample := range equivSamples(t) {
		t.Run(sample.name, func(t *testing.T) {
			for _, c := range sample.cfds {
				view, ok := c.VariableView()
				if !ok {
					continue
				}
				spec, err := core.SpecFromCFD(view)
				if err != nil {
					t.Fatal(err)
				}
				assign, counts, err := spec.AssignAll(sample.d)
				if err != nil {
					t.Fatal(err)
				}
				xi, err := sample.d.Schema().Indices(spec.X)
				if err != nil {
					t.Fatal(err)
				}
				wantCounts := make([]int, spec.K())
				buf := make([]string, len(xi))
				for i, tp := range sample.d.Tuples() {
					for j, col := range xi {
						buf[j] = tp[col]
					}
					want := spec.Assign(buf)
					if assign[i] != want {
						t.Fatalf("%s: tuple %d: encoded σ=%d, row σ=%d", c.Name, i, assign[i], want)
					}
					if want >= 0 {
						wantCounts[want]++
					}
				}
				if !equalInts(counts, wantCounts) {
					t.Errorf("%s: lstat differs: %v vs %v", c.Name, counts, wantCounts)
				}
			}
		})
	}
}

// TestEncodedLazyBuildUnderParDetect runs the parallel multi-CFD
// detector against freshly built (never-encoded) fragments: the lazy
// per-column construction races only if its synchronization is broken,
// which `go test -race` turns into a failure. Results are compared
// against SeqDetect for equality of patterns, shipment and modeled
// time.
func TestEncodedLazyBuildUnderParDetect(t *testing.T) {
	data := workload.Cust(workload.CustConfig{N: 6_000, Seed: 3, ErrRate: 0.01})
	rules := []*cfd.CFD{
		workload.CustPatternCFD(16),
		cfd.MustParse(`p1: [name] -> [phn]`),
		cfd.MustParse(`p2: [street, city] -> [zip]`),
		cfd.MustParse(`p3: [CC, title] -> [price]`),
	}
	freshCluster := func() *Cluster {
		h, err := partition.Uniform(data.Clone(), 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := core.FromHorizontal(h)
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	seq, err := core.SeqDetect(freshCluster(), rules, core.PatDetectRT, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := DetectSetParallel(freshCluster(), rules, PatDetectRT, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rules {
		if !seq.PerCFD[i].SameTuples(par.PerCFD[i]) {
			t.Errorf("%s: parallel patterns differ from sequential", rules[i].Name)
		}
	}
	if seq.ShippedTuples != par.ShippedTuples {
		t.Errorf("ShippedTuples %d != %d", seq.ShippedTuples, par.ShippedTuples)
	}
	if seq.ModeledTime != par.ModeledTime {
		t.Errorf("ModeledTime %v != %v", seq.ModeledTime, par.ModeledTime)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
