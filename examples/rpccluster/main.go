// RPC cluster: the multi-process deployment mode. This example spins
// up three detection sites as real net/rpc TCP servers (in-process
// here for convenience; cmd/cfdsite runs the identical server as a
// standalone daemon), connects a driver with
// distcfd.NewRemoteCluster, and runs the detection algorithms over
// actual sockets — statistics exchange, tuple shipment and coordinator
// detection all cross the network.
package main

import (
	"fmt"
	"log"
	"net"

	"distcfd"
	"distcfd/internal/core"
	"distcfd/internal/remote"
	"distcfd/internal/workload"
)

func main() {
	part, err := workload.EMPFig1bPartition()
	if err != nil {
		log.Fatal(err)
	}

	// One TCP server per fragment (what `cfdsite -data fragN.csv -id N`
	// does from the command line).
	addrs := make([]string, part.N())
	for i, frag := range part.Fragments {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		site := core.NewSite(i, frag, part.Predicates[i])
		go func() { _ = remote.Serve(lis, site, part.Schema) }()
		addrs[i] = lis.Addr().String()
		fmt.Printf("site %d: %d tuples on %s (%v)\n", i, frag.Len(), addrs[i], part.Predicates[i])
	}

	cluster, err := distcfd.NewRemoteCluster(addrs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	for _, rule := range workload.EMPCFDs() {
		res, err := distcfd.Detect(cluster, rule, distcfd.PatDetectS, distcfd.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s over TCP: %d tuples shipped, %d violating pattern(s)\n",
			rule.Name, res.ShippedTuples, res.Patterns.Len())
		for _, t := range res.Patterns.Tuples() {
			fmt.Printf("  %v\n", t)
		}
	}
}
