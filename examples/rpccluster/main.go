// RPC cluster: the multi-process deployment mode. This example spins
// up three detection sites as real net/rpc TCP servers (in-process
// here for convenience; cmd/cfdsite runs the identical server as a
// standalone daemon), connects a driver with timeouts configured,
// compiles a detection session, and serves repeated queries over
// actual sockets — statistics exchange, tuple shipment and coordinator
// detection all cross the network, and a hung site can stall a run
// only up to the per-call I/O budget.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"distcfd"
	"distcfd/internal/core"
	"distcfd/internal/remote"
	"distcfd/internal/workload"
)

func main() {
	part, err := workload.EMPFig1bPartition()
	if err != nil {
		log.Fatal(err)
	}

	// One TCP server per fragment (what `cfdsite -data fragN.csv -id N`
	// does from the command line).
	addrs := make([]string, part.N())
	for i, frag := range part.Fragments {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		site := core.NewSite(i, frag, part.Predicates[i])
		go func() { _ = remote.Serve(lis, site, part.Schema) }()
		addrs[i] = lis.Addr().String()
		fmt.Printf("site %d: %d tuples on %s (%v)\n", i, frag.Len(), addrs[i], part.Predicates[i])
	}

	cluster, err := distcfd.NewRemoteClusterConfig(addrs, distcfd.DialConfig{
		DialTimeout: 5 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Compile once over the remote cluster; WithTimeout bounds every
	// RPC so a wedged site fails the run instead of hanging it.
	det, err := distcfd.Compile(cluster, workload.EMPCFDs(),
		distcfd.WithAlgorithm(distcfd.PatDetectS),
		distcfd.WithTimeout(10*time.Second))
	if err != nil {
		log.Fatal(err)
	}

	// Serve per-rule queries from the session; each call may also carry
	// its own deadline.
	for _, rule := range workload.EMPCFDs() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		res, err := det.DetectOne(ctx, rule.Name)
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s over TCP: %d tuples shipped, %d violating pattern(s)\n",
			rule.Name, res.ShippedTuples, res.PerCFD[0].Len())
		for _, t := range res.PerCFD[0].Tuples() {
			fmt.Printf("  %v\n", t)
		}
	}
}
