// Quickstart: detect CFD violations in the paper's running example
// (Fig. 1) using only the public distcfd API — load a relation, parse
// data-quality rules, fragment the data across simulated sites,
// compile a detection session once, and serve repeated detection
// calls from it.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"distcfd"
)

const empCSV = `id,name,title,CC,AC,phn,street,city,zip,salary
1,Sam,DMTS,44,131,8765432,Princess Str.,EDI,EH2 4HF,95k
2,Mike,MTS,44,131,1234567,Mayfield,NYC,EH4 8LE,80k
3,Rick,DMTS,44,131,3456789,Mayfield,NYC,EH4 8LE,95k
4,Philip,DMTS,44,131,2909209,Crichton,EDI,EH4 8LE,95k
5,Adam,VP,44,131,7478626,Mayfield,EDI,EH4 8LE,200k
6,Joe,MTS,01,908,1416282,Mtn Ave,NYC,07974,110k
7,Bob,DMTS,01,908,2345678,Mtn Ave,MH,07974,150k
8,Jef,DMTS,31,20,8765432,Muntplein,AMS,1012 WR,90k
9,Steven,MTS,31,20,1425364,Spuistraat,AMS,1012 WR,75k
10,Bram,MTS,31,10,2536475,Kruisplein,ROT,3012 CC,75k
`

const empRules = `
# cfd1+cfd2: within a country, zip determines street
phi1: [CC, zip] -> [street] : (44, _ || _), (31, _ || _)
# cfd3: a traditional FD — country + title determine salary
phi2: [CC, title] -> [salary]
# cfd4+cfd5: area codes pin the city
phi3: [CC, AC] -> [city] : (44, 131 || EDI), (01, 908 || MH)
`

func main() {
	ctx := context.Background()
	data, err := distcfd.ReadCSV(strings.NewReader(empCSV), "EMP", "id")
	if err != nil {
		log.Fatal(err)
	}
	rules, err := distcfd.ParseRules(strings.NewReader(empRules))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d tuples, %d rules\n\n", data.Len(), len(rules))

	// Fragment the relation across three simulated sites, as Fig. 1(b)
	// does by job title.
	part, err := distcfd.PartitionByAttribute(data, "title")
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := distcfd.NewCluster(part)
	if err != nil {
		log.Fatal(err)
	}

	// Compile once: Σ normalization, LHS clustering, σ-routing specs —
	// all constraint-side work happens here, not per call. One compiled
	// session per algorithm shows the shipment trade-offs.
	for _, algo := range []distcfd.Algorithm{distcfd.CTRDetect, distcfd.PatDetectS, distcfd.PatDetectRT} {
		det, err := distcfd.Compile(cluster, rules, distcfd.WithAlgorithm(algo))
		if err != nil {
			log.Fatal(err)
		}
		res, err := det.Detect(ctx)
		if err != nil {
			log.Fatal(err)
		}
		total := 0
		for _, pats := range res.PerCFD {
			total += pats.Len()
		}
		fmt.Printf("%-12s shipped %2d tuple(s), %d violating pattern(s) across the rule set\n",
			algo, res.ShippedTuples, total)
	}

	// The serving path: one long-lived session answers per-rule and
	// whole-set queries, reusing the compiled plans every time.
	det, err := distcfd.Compile(cluster, rules, distcfd.WithAlgorithm(distcfd.PatDetectS))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, rule := range rules {
		one, err := det.DetectOne(ctx, rule.Name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("── %s\n", distcfd.FormatCFD(rule))
		for _, t := range one.PerCFD[0].Tuples() {
			fmt.Printf("    violating pattern: (%s)\n", strings.Join(t, ", "))
		}
	}

	set, err := det.Detect(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull rule set: %d tuples shipped, modeled response time %.3f, wall %v\n",
		set.ShippedTuples, set.ModeledTime, set.WallTime)

	// Delta-aware serving: after the first incremental round seeds the
	// retained state, only changed tuples cross the wire. Mike moves to
	// Edinburgh (fixing one phi1 pair) and a conflicting VP appears.
	if _, err := det.DetectIncremental(ctx); err != nil { // seed round
		log.Fatal(err)
	}
	// Fragments are one per title value, sorted: DMTS = site 0,
	// MTS = site 1, VP = site 2. Mike is the MTS fragment's first row;
	// the update is a delete plus an insert of the corrected row.
	if _, err = det.Apply(ctx, 1, distcfd.Delta{
		Deletes: []int{0},
		Inserts: []distcfd.Tuple{{"2", "Mike", "MTS", "44", "131", "1234567", "Princess Str.", "EDI", "EH2 4HF", "80k"}},
	}); err != nil {
		log.Fatal(err)
	}
	inc, err := det.DetectDelta(ctx, map[int]distcfd.Delta{
		2: {Inserts: []distcfd.Tuple{{"11", "Ada", "VP", "44", "131", "9990001", "Mayfield", "NYC", "EH4 8LE", "210k"}}},
	})
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, pats := range inc.PerCFD {
		total += pats.Len()
	}
	fmt.Printf("after deltas: %d violating pattern(s); incremental round shipped %d tuple(s) on the wire (full recompute would ship %d)\n",
		total, inc.DeltaShippedTuples, inc.ShippedTuples)
}
