// Quickstart: detect CFD violations in the paper's running example
// (Fig. 1) using only the public distcfd API — load a relation, parse
// data-quality rules, fragment the data across simulated sites, and
// run the three detection algorithms.
package main

import (
	"fmt"
	"log"
	"strings"

	"distcfd"
)

const empCSV = `id,name,title,CC,AC,phn,street,city,zip,salary
1,Sam,DMTS,44,131,8765432,Princess Str.,EDI,EH2 4HF,95k
2,Mike,MTS,44,131,1234567,Mayfield,NYC,EH4 8LE,80k
3,Rick,DMTS,44,131,3456789,Mayfield,NYC,EH4 8LE,95k
4,Philip,DMTS,44,131,2909209,Crichton,EDI,EH4 8LE,95k
5,Adam,VP,44,131,7478626,Mayfield,EDI,EH4 8LE,200k
6,Joe,MTS,01,908,1416282,Mtn Ave,NYC,07974,110k
7,Bob,DMTS,01,908,2345678,Mtn Ave,MH,07974,150k
8,Jef,DMTS,31,20,8765432,Muntplein,AMS,1012 WR,90k
9,Steven,MTS,31,20,1425364,Spuistraat,AMS,1012 WR,75k
10,Bram,MTS,31,10,2536475,Kruisplein,ROT,3012 CC,75k
`

const empRules = `
# cfd1+cfd2: within a country, zip determines street
phi1: [CC, zip] -> [street] : (44, _ || _), (31, _ || _)
# cfd3: a traditional FD — country + title determine salary
phi2: [CC, title] -> [salary]
# cfd4+cfd5: area codes pin the city
phi3: [CC, AC] -> [city] : (44, 131 || EDI), (01, 908 || MH)
`

func main() {
	data, err := distcfd.ReadCSV(strings.NewReader(empCSV), "EMP", "id")
	if err != nil {
		log.Fatal(err)
	}
	rules, err := distcfd.ParseRules(strings.NewReader(empRules))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d tuples, %d rules\n\n", data.Len(), len(rules))

	// Fragment the relation across three simulated sites, as Fig. 1(b)
	// does by job title.
	part, err := distcfd.PartitionByAttribute(data, "title")
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := distcfd.NewCluster(part)
	if err != nil {
		log.Fatal(err)
	}

	for _, rule := range rules {
		fmt.Printf("── %s\n", distcfd.FormatCFD(rule))
		for _, algo := range []distcfd.Algorithm{distcfd.CTRDetect, distcfd.PatDetectS, distcfd.PatDetectRT} {
			res, err := distcfd.Detect(cluster, rule, algo, distcfd.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s shipped %d tuple(s), %d violating pattern(s)",
				algo, res.ShippedTuples, res.Patterns.Len())
			if res.LocalOnly {
				fmt.Print("  [checked locally]")
			}
			fmt.Println()
		}
		res, _ := distcfd.Detect(cluster, rule, distcfd.PatDetectS, distcfd.Options{})
		for _, t := range res.Patterns.Tuples() {
			fmt.Printf("    violating pattern: (%s)\n", strings.Join(t, ", "))
		}
	}

	// The whole rule set at once, with overlapping CFDs merged.
	set, err := distcfd.DetectSet(cluster, rules, distcfd.PatDetectRT, distcfd.Options{}, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull rule set: %d tuples shipped, modeled response time %.3f, wall %v\n",
		set.ShippedTuples, set.ModeledTime, set.WallTime)
}
