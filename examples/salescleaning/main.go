// Sales-records cleaning: the scenario motivating the paper's Exp-5/6 —
// a retailer's order table is range-partitioned across regional data
// centers, and the data-quality team maintains several address rules
// whose LHS attributes overlap. The example contrasts SeqDetect
// (one CFD at a time, tuples re-shipped per CFD) with ClustDetect
// (overlapping CFDs merged, tuples shipped once per cluster).
package main

import (
	"fmt"
	"log"

	"distcfd"
	"distcfd/internal/workload"
)

func main() {
	// 40K synthetic sales records with 2% injected inconsistencies.
	data := workload.Cust(workload.CustConfig{N: 40_000, Seed: 7, ErrRate: 0.02})
	fmt.Printf("CUST: %d tuples × %d attributes\n", data.Len(), data.Schema().Arity())

	// Two overlapping rules (LHS containment):
	//   r1: (CC, AC, zip) → city   with 255 patterns
	//   r2: (CC, AC)      → city   with 128 patterns
	rules := workload.CustOverlappingCFDs(255, 128)
	for _, r := range rules {
		fmt.Printf("  rule %s: %d LHS attrs, %d patterns\n", r.Name, len(r.X), len(r.Tp))
	}

	for _, sites := range []int{2, 4, 8} {
		part, err := distcfd.PartitionUniform(data, sites, 1)
		if err != nil {
			log.Fatal(err)
		}
		cluster, err := distcfd.NewCluster(part)
		if err != nil {
			log.Fatal(err)
		}
		seq, err := distcfd.DetectSet(cluster, rules, distcfd.PatDetectRT, distcfd.Options{}, false)
		if err != nil {
			log.Fatal(err)
		}
		clu, err := distcfd.DetectSet(cluster, rules, distcfd.PatDetectRT, distcfd.Options{}, true)
		if err != nil {
			log.Fatal(err)
		}
		saved := float64(seq.ShippedTuples-clu.ShippedTuples) / float64(seq.ShippedTuples) * 100
		fmt.Printf("\n%d sites:\n", sites)
		fmt.Printf("  SeqDetect:   %7d tuples shipped, modeled time %7.3f\n",
			seq.ShippedTuples, seq.ModeledTime)
		fmt.Printf("  ClustDetect: %7d tuples shipped, modeled time %7.3f  (%.0f%% less traffic)\n",
			clu.ShippedTuples, clu.ModeledTime, saved)
		for i, r := range rules {
			if !seq.PerCFD[i].SameTuples(clu.PerCFD[i]) {
				log.Fatalf("algorithms disagree on %s", r.Name)
			}
		}
		fmt.Printf("  both found the same %d + %d violating patterns\n",
			seq.PerCFD[0].Len(), seq.PerCFD[1].Len())
	}
}
