// Vertical partition design: Section V of the paper. Given column
// groups spread across sites (a column-store-style layout), check
// whether the data-quality rules can be validated locally (dependency
// preservation, Proposition 7), compute the minimum attribute
// augmentation when they cannot (Theorem 8 — Example 7's answer), and
// compare shipment with and without the semijoin reduction when
// detecting over the unrefined layout.
package main

import (
	"fmt"
	"log"

	"distcfd"
	"distcfd/internal/workload"
)

func main() {
	data := workload.EMPData()
	rules := workload.EMPCFDs()

	// Example 1's layout: DV1 = address columns, DV2 = phone columns,
	// DV3 = salary; the key `id` rides along in every fragment.
	layout := workload.EMPVerticalAttrSets()
	withKey := make([][]string, len(layout))
	for i, set := range layout {
		withKey[i] = append([]string{"id"}, set...)
		fmt.Printf("DV%d: %v\n", i+1, withKey[i])
	}

	if distcfd.DependencyPreserving(rules, withKey) {
		fmt.Println("layout preserves Σ — every rule locally checkable")
	} else {
		fmt.Println("layout does NOT preserve Σ — cross-site checks required")
	}

	// Example 7: the minimum refinement has size 3.
	z, err := distcfd.MinimumRefinement(rules, withKey, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nminimum refinement (size %d):\n", z.Size())
	for i, added := range z {
		if len(added) > 0 {
			fmt.Printf("  add %v to DV%d\n", added, i+1)
		}
	}
	if !distcfd.DependencyPreserving(rules, z.Apply(withKey)) {
		log.Fatal("refined layout should preserve Σ")
	}
	fmt.Println("refined layout preserves Σ: all rules now locally checkable")

	// Detect over the unrefined layout: columns must ship.
	v, err := distcfd.PartitionVertical(data, layout)
	if err != nil {
		log.Fatal(err)
	}
	plain, err := distcfd.DetectVertical(v, rules, distcfd.VerticalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	semi, err := distcfd.DetectVertical(v, rules, distcfd.VerticalOptions{SemiJoin: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndetection over the unrefined layout:\n")
	fmt.Printf("  plain:    %d tuples shipped\n", plain.ShippedTuples)
	fmt.Printf("  semijoin: %d tuples shipped\n", semi.ShippedTuples)
	for i, r := range rules {
		fmt.Printf("  %s: %d violating pattern(s), evaluated at DV%d\n",
			r.Name, plain.PerCFD[i].Len(), plain.Targets[i]+1)
	}
}
