// Genome cross-reference auditing: the paper's Exp-4 scenario. A
// cross-reference table is fragmented by reference type across
// curation sites, and the rule to check is a traditional FD — whose
// all-wildcard pattern would normally force every tuple to a single
// coordinator. Mining closed frequent LHS patterns per site
// (Section IV-B) restores a fine σ-partitioning and slashes shipment.
package main

import (
	"context"
	"fmt"
	"log"

	"distcfd"
	"distcfd/internal/workload"
)

func main() {
	// Human-only cross-references, fragmented by curation batch — a
	// layout strongly (but imperfectly) correlated with external_db.
	data := workload.XRefHuman(60_000, 3)
	part, err := distcfd.PartitionByAttribute(data, "source")
	if err != nil {
		log.Fatal(err)
	}
	// Treat the fragment predicates as unknown, as the experiment does,
	// so the mining effect is isolated from predicate pruning.
	part.Predicates = nil
	cluster, err := distcfd.NewCluster(part)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XREF: %d tuples across %d type-partitioned sites\n", data.Len(), part.N())

	rule := workload.XRefMiningFD()
	fmt.Printf("rule: %s (a traditional FD)\n\n", distcfd.FormatCFD(rule))

	base, err := distcfd.Detect(cluster, rule, distcfd.PatDetectS, distcfd.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without mining: %7d tuples shipped, %d violating patterns\n",
		base.ShippedTuples, base.Patterns.Len())

	// Mining is part of compilation: each θ's session mines the sites
	// once at Compile, and every subsequent Detect reuses the mined
	// σ-partitioning — the serving pattern for an always-on auditor.
	ctx := context.Background()
	for _, theta := range []float64{0.01, 0.2, 0.5, 0.9} {
		det, err := distcfd.Compile(cluster, []*distcfd.CFD{rule},
			distcfd.WithAlgorithm(distcfd.PatDetectS),
			distcfd.WithMineTheta(theta))
		if err != nil {
			log.Fatal(err)
		}
		res, err := det.Detect(ctx)
		if err != nil {
			log.Fatal(err)
		}
		pats := res.PerCFD[0]
		if pats.Len() != base.Patterns.Len() {
			log.Fatalf("mining changed the answer at θ=%.2f", theta)
		}
		saved := float64(base.ShippedTuples-res.ShippedTuples) / float64(base.ShippedTuples) * 100
		fmt.Printf("mining θ=%.2f:  %7d tuples shipped (%4.0f%% saved)\n",
			theta, res.ShippedTuples, saved)
	}
}
