package distcfd

import (
	"bytes"
	"strings"
	"testing"

	"distcfd/internal/workload"
)

// TestFacadeQuickstart exercises the documented public workflow
// end-to-end: CSV in, rules parsed, partitioned, detected.
func TestFacadeQuickstart(t *testing.T) {
	var csv bytes.Buffer
	if err := WriteCSV(&csv, workload.EMPData()); err != nil {
		t.Fatal(err)
	}
	data, err := ReadCSV(bytes.NewReader(csv.Bytes()), "EMP", "id")
	if err != nil {
		t.Fatal(err)
	}
	rules, err := ParseRules(strings.NewReader(`
# Example 2 of the paper
phi1: [CC, zip] -> [street] : (44, _ || _), (31, _ || _)
phi2: [CC, title] -> [salary]
phi3: [CC, AC] -> [city] : (44, 131 || EDI), (01, 908 || MH)
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("rules = %d", len(rules))
	}
	part, err := PartitionUniform(data, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(part)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(cl, rules[0], PatDetectRT, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Patterns.Len() != 2 {
		t.Errorf("phi1 patterns = %d, want 2", res.Patterns.Len())
	}
	set, err := DetectSet(cl, rules, PatDetectS, Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.PerCFD) != 3 {
		t.Errorf("PerCFD = %d", len(set.PerCFD))
	}
}

func TestFacadeCentral(t *testing.T) {
	d := workload.EMPData()
	rule, err := ParseCFD(`phi3: [CC, AC] -> [city] : (44, 131 || EDI), (01, 908 || MH)`)
	if err != nil {
		t.Fatal(err)
	}
	pats, err := DetectCentral(d, rule)
	if err != nil {
		t.Fatal(err)
	}
	if pats.Len() != 2 {
		t.Errorf("central patterns = %d, want 2", pats.Len())
	}
	if got := FormatCFD(rule); !strings.Contains(got, "phi3") {
		t.Errorf("FormatCFD = %q", got)
	}
}

func TestFacadeVertical(t *testing.T) {
	d := workload.EMPData()
	cs := workload.EMPCFDs()
	frag := workload.EMPVerticalAttrSets()
	withKey := make([][]string, len(frag))
	for i, f := range frag {
		withKey[i] = append([]string{"id"}, f...)
	}
	if DependencyPreserving(cs, withKey) {
		t.Error("Example 1 partition should not preserve")
	}
	z, err := MinimumRefinement(cs, withKey, 20)
	if err != nil {
		t.Fatal(err)
	}
	if z.Size() != 3 {
		t.Errorf("minimum refinement = %d, want 3 (Example 7)", z.Size())
	}
	g := GreedyRefinement(cs, withKey)
	if !DependencyPreserving(cs, g.Apply(withKey)) {
		t.Error("greedy refinement not preserving")
	}
	v, err := PartitionVertical(d, frag)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectVertical(v, cs, VerticalOptions{SemiJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCFD) != 3 {
		t.Errorf("vertical PerCFD = %d", len(res.PerCFD))
	}
}

func TestFacadeSchemaAndFD(t *testing.T) {
	s, err := NewSchema("R", []string{"a", "b"}, "a")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRelation(s)
	if r.Len() != 0 {
		t.Error("fresh relation not empty")
	}
	fd, err := NewFD("f", []string{"a"}, []string{"b"})
	if err != nil || !fd.IsFD() {
		t.Errorf("NewFD: %v %v", fd, err)
	}
	if DefaultCostModel().TransferRate <= 0 {
		t.Error("default cost model degenerate")
	}
}
