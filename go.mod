module distcfd

go 1.24
