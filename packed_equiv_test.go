package distcfd

// Equivalence of packed σ-block shipping (the wire-v6 payload form)
// against the v5 dict+ID form, in process: disabling packed shipping
// (Options.NoPackedShip) may change ONLY the byte accounting. The
// violation patterns, shipped-tuple totals, and modeled time — the
// paper's |M| cost model bills tuples, not bytes — must stay
// byte-identical, across plain, incremental, and degraded runs.

import (
	"context"
	"fmt"
	"testing"

	"distcfd/internal/colstore"
	"distcfd/internal/core"
	"distcfd/internal/faulty"
	"distcfd/internal/partition"
	"distcfd/internal/relation"
	"distcfd/internal/workload"
)

var packedEquivRetry = core.RetryPolicy{BaseDelay: 50_000, MaxDelay: 500_000} // 50µs, 500µs

// openStoreSites persists each fragment into its own store directory
// and opens store-backed sites over them — the configuration whose
// extracts carry packed providers.
func openStoreSites(t *testing.T, h *partition.Horizontal) []core.SiteAPI {
	t.Helper()
	sites := make([]core.SiteAPI, h.N())
	for i, frag := range h.Fragments {
		dir := t.TempDir()
		if _, err := colstore.WriteRelationDir(dir, frag); err != nil {
			t.Fatal(err)
		}
		s, err := core.OpenStoreSite(i, dir, relation.True())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		sites[i] = s
	}
	return sites
}

// assertSameDetection pins the full equivalence contract between a
// packed-shipping run and its NoPackedShip control.
func assertSameDetection(t *testing.T, tag string, packed, plain *core.SetResult) {
	t.Helper()
	for ci := range plain.PerCFD {
		g, w := packed.PerCFD[ci], plain.PerCFD[ci]
		if g.Len() != w.Len() {
			t.Fatalf("%s: cfd %d: %d violation patterns packed, %d plain", tag, ci, g.Len(), w.Len())
		}
		for i, tup := range w.Tuples() {
			if !tup.Equal(g.Tuple(i)) {
				t.Fatalf("%s: cfd %d: pattern %d differs: packed %v, plain %v", tag, ci, i, g.Tuple(i), tup)
			}
		}
	}
	if packed.ShippedTuples != plain.ShippedTuples {
		t.Errorf("%s: ShippedTuples packed %d, plain %d", tag, packed.ShippedTuples, plain.ShippedTuples)
	}
	if packed.ModeledTime != plain.ModeledTime {
		t.Errorf("%s: ModeledTime packed %v, plain %v", tag, packed.ModeledTime, plain.ModeledTime)
	}
}

// TestPackedShipEquivalence: a clustered run over store-backed sites
// with packed shipping must match its v5-form control exactly and
// ship strictly fewer modeled bytes.
func TestPackedShipEquivalence(t *testing.T) {
	data := workload.Cust(workload.CustConfig{N: 20_000, Seed: 42, ErrRate: 0.01})
	h, err := partition.Uniform(data, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sites := openStoreSites(t, h)
	rules := outOfCoreRules()
	run := func(opt core.Options) *core.SetResult {
		cl, err := core.NewCluster(h.Schema, sites)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.ClustDetect(cl, rules, core.PatDetectS, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Anchor: one worker, v5 shipping. Every (workers, ship) combination
	// must reproduce it exactly — packed deposits route through the
	// serial chunk-streaming kernel, so the worker budget is the other
	// axis that must not show through.
	plain := run(core.Options{Workers: 1, NoPackedShip: true})
	var pb, vb int64
	for _, workers := range []int{1, 2, 4} {
		packed := run(core.Options{Workers: workers})
		assertSameDetection(t, fmt.Sprintf("workers=%d", workers), packed, plain)
		pb = packed.Metrics.TotalBytes()
		vb = run(core.Options{Workers: workers, NoPackedShip: true}).Metrics.TotalBytes()
		if pb >= vb {
			t.Errorf("workers=%d: packed run modeled %d shipped bytes, plain %d — packed should be strictly smaller",
				workers, pb, vb)
		}
	}
	t.Logf("shipped bytes: packed %d, plain %d (%.2fx)", pb, vb, float64(pb)/float64(vb))
}

// TestPackedShipEquivalenceIncremental drives the same delta sequence
// through two independent store clusters (the WAL mutates on-disk
// state, so the runs cannot share directories), one shipping packed
// and one not: the seed round and every delta round must agree on
// everything but bytes. Delta batches never carry packed payloads —
// a mutated fragment is no longer a pure base view — so the delta
// rounds' byte accounting must be equal, not merely no larger.
func TestPackedShipEquivalenceIncremental(t *testing.T) {
	const rounds = 3
	data := workload.Cust(workload.CustConfig{N: 9_000, Seed: 17, ErrRate: 0.02})
	h, err := partition.Uniform(data, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One delta sequence, generated once, replayed into both clusters.
	streams := workload.SplitStreams(h.Fragments,
		workload.DeltaConfig{Seed: 5, Inserts: 40, Updates: 25, Deletes: 15, ErrRate: 0.05},
		func(f *relation.Relation, c workload.DeltaConfig) *workload.DeltaStream {
			return workload.CustDeltaStream(f, c)
		})
	deltas := make([]map[int]relation.Delta, rounds)
	for r := range deltas {
		m := make(map[int]relation.Delta, len(streams))
		for i, ds := range streams {
			m[i] = ds.Next()
		}
		deltas[r] = m
	}

	ctx := context.Background()
	rules := outOfCoreRules()
	run := func(opt core.Options) []*core.SetResult {
		sites := openStoreSites(t, h)
		cl, err := core.NewCluster(h.Schema, sites)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.CompileSet(ctx, cl, rules, core.PatDetectRT, opt, true)
		if err != nil {
			t.Fatal(err)
		}
		seed, err := p.DetectIncremental(ctx)
		if err != nil {
			t.Fatal(err)
		}
		out := []*core.SetResult{seed}
		for _, m := range deltas {
			res, err := p.DetectDelta(ctx, m)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
		return out
	}

	packed := run(core.Options{})
	plain := run(core.Options{NoPackedShip: true})
	for r := range plain {
		tag := "seed"
		if r > 0 {
			tag = "delta round"
		}
		assertSameDetection(t, tag, packed[r], plain[r])
		if packed[r].DeltaShippedTuples != plain[r].DeltaShippedTuples {
			t.Errorf("round %d: DeltaShippedTuples packed %d, plain %d",
				r, packed[r].DeltaShippedTuples, plain[r].DeltaShippedTuples)
		}
		if r > 0 && packed[r].DeltaShippedBytes != plain[r].DeltaShippedBytes {
			t.Errorf("round %d: DeltaShippedBytes packed %d, plain %d — delta batches ship unpacked either way",
				r, packed[r].DeltaShippedBytes, plain[r].DeltaShippedBytes)
		}
	}
}

// TestPackedShipEquivalenceDegraded holds one store site down for good
// under FailDegrade: the packed and plain runs see the same fault
// sequence (faults key on the call sequence, which packing does not
// change), so the partial results must match exactly — exclusions,
// coverage, and patterns.
func TestPackedShipEquivalenceDegraded(t *testing.T) {
	const down = 1
	data := workload.Cust(workload.CustConfig{N: 6_000, Seed: 9, ErrRate: 0.05})
	h, err := partition.Uniform(data, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	rules := outOfCoreRules()
	run := func(opt core.Options) *core.SetResult {
		sites := openStoreSites(t, h)
		sites[down] = faulty.Wrap(sites[down], faulty.Plan{CrashAt: 1})
		cl, err := core.NewCluster(h.Schema, sites)
		if err != nil {
			t.Fatal(err)
		}
		opt.Failure = core.FailDegrade
		opt.Retry = packedEquivRetry
		res, err := core.ClustDetect(cl, rules, core.PatDetectS, opt)
		if err != nil {
			t.Fatalf("degraded run failed outright: %v", err)
		}
		return res
	}
	packed := run(core.Options{})
	plain := run(core.Options{NoPackedShip: true})
	if !packed.Partial || !plain.Partial {
		t.Fatalf("runs over a dead site must report Partial (packed %v, plain %v)", packed.Partial, plain.Partial)
	}
	if len(packed.ExcludedSites) != 1 || packed.ExcludedSites[0] != down ||
		len(plain.ExcludedSites) != 1 || plain.ExcludedSites[0] != down {
		t.Fatalf("ExcludedSites packed %v, plain %v, want [%d]", packed.ExcludedSites, plain.ExcludedSites, down)
	}
	if packed.Coverage != plain.Coverage {
		t.Errorf("Coverage packed %v, plain %v", packed.Coverage, plain.Coverage)
	}
	assertSameDetection(t, "degraded", packed, plain)
	if pb, vb := packed.Metrics.TotalBytes(), plain.Metrics.TotalBytes(); pb > vb {
		t.Errorf("degraded packed run modeled %d shipped bytes, plain %d", pb, vb)
	}
}
