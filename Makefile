GO ?= go

.PHONY: ci build vet test race bench bench-smoke bench-full examples

# ci mirrors .github/workflows/ci.yml: a missing package, vet
# regression, race, broken example, or broken benchmark can never land
# silently again.
ci: build vet race examples bench-smoke

# examples builds AND runs every examples/ program, so facade breakage
# (the examples exercise the public API end to end, including the RPC
# deployment mode over loopback) fails CI instead of rotting.
examples:
	@set -e; for d in examples/*/; do \
		echo "== go run ./$$d"; \
		$(GO) run ./$$d >/dev/null; \
	done

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs every benchmark once (all benchmarks live in the
# root package, BenchmarkIncrementalDetect included) so benchmark code
# cannot rot; the output is kept in bench-smoke.txt, which CI uploads
# as an artifact so every run's numbers are retrievable. bench is its
# alias, and bench-full runs at the paper's dataset sizes.
bench-smoke:
	@rm -f bench-smoke.txt
	@$(GO) test -run '^$$' -bench . -benchtime 1x . > bench-smoke.txt 2>&1 || { cat bench-smoke.txt; exit 1; }
	@cat bench-smoke.txt

bench: bench-smoke

bench-full:
	DISTCFD_SCALE=1.0 $(GO) test -run '^$$' -bench . .
