GO ?= go

.PHONY: ci build vet test race bench bench-full

# ci mirrors .github/workflows/ci.yml: a missing package, vet
# regression, race, or broken benchmark can never land silently again.
ci: build vet race bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark once (smoke; all benchmarks live in the
# root package); bench-full at the paper's dataset sizes.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

bench-full:
	DISTCFD_SCALE=1.0 $(GO) test -run '^$$' -bench . .
