GO ?= go

.PHONY: ci build vet test race bench bench-smoke bench-full bench-compare bench-storage-full examples lint wire-golden chaos chaos-load

# ci mirrors .github/workflows/ci.yml: a missing package, vet
# regression, lint finding, race, broken example, broken benchmark, or
# chaos regression can never land silently again.
ci: build vet lint race examples bench-smoke chaos chaos-load

# lint builds the repo's own analyzer suite (cmd/distcfdvet: keyjoin,
# ctxflow, poolpair, wirecompat) and runs it over every package via the
# vet -vettool protocol. Findings are suppressed per line with a
# //distcfd:<analyzer>-ok comment. staticcheck and govulncheck run too
# when installed, but are gated so the target works on a bare
# toolchain.
lint:
	$(GO) build -o bin/distcfdvet ./cmd/distcfdvet
	$(GO) vet -vettool=$$(pwd)/bin/distcfdvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "== staticcheck"; staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "== govulncheck"; govulncheck ./...; \
	else echo "govulncheck not installed; skipping"; fi

# wire-golden regenerates internal/remote/wire.golden, the committed
# fingerprint of the RPC wire structs that the wirecompat analyzer and
# TestWireGolden check against. Run after any deliberate wire change,
# review the diff, and commit the new golden alongside a WireVersion
# bump.
wire-golden:
	$(GO) build -o bin/distcfdvet ./cmd/distcfdvet
	./bin/distcfdvet -write-wire-golden internal/remote

# examples builds AND runs every examples/ program, so facade breakage
# (the examples exercise the public API end to end, including the RPC
# deployment mode over loopback) fails CI instead of rotting.
examples:
	@set -e; for d in examples/*/; do \
		echo "== go run ./$$d"; \
		$(GO) run ./$$d >/dev/null; \
	done

# chaos runs the fault-injection suites under the race detector with a
# randomized fault seed. The seed is printed before the run, and every
# failure replays exactly with
#   DISTCFD_CHAOS_SEED=<seed> make chaos
# Only the fault-plan seeds vary — data and partition seeds are fixed —
# so a red run is always a real robustness regression, never an
# "unlucky dataset".
chaos:
	@seed=$${DISTCFD_CHAOS_SEED:-$$(date +%s)}; \
	echo "== chaos (DISTCFD_CHAOS_SEED=$$seed)"; \
	DISTCFD_CHAOS_SEED=$$seed $(GO) test -race -count=1 \
		-run 'Chaos|Nonce|Fault|Parse|Crash|Rate|Latency|WrapListener|ErrorEnvelope|DialRetry|Redial' \
		./internal/faulty/ ./internal/core/ ./internal/remote/

# chaos-load is the overload companion to chaos: the admission, drain,
# deadline and backpressure suites under the race detector — 32
# concurrent Detect sessions against draining and overloaded sites,
# retry-after-vs-deadline budgeting, the drain RPC over loopback TCP,
# and the v6-peer fallback. Same seed convention as chaos: printed
# before the run, replayed exactly with
#   DISTCFD_CHAOS_SEED=<seed> make chaos-load
chaos-load:
	@seed=$${DISTCFD_CHAOS_SEED:-$$(date +%s)}; \
	echo "== chaos-load (DISTCFD_CHAOS_SEED=$$seed)"; \
	DISTCFD_CHAOS_SEED=$$seed $(GO) test -race -count=1 \
		-run 'ChaosLoad|Admission|Overload|Drain|Deadline|SleepCtx|Breaker|EnvelopeRetryAfter|EnvelopeParamFree|V6Fallback|WorkCtx|Ping' \
		./internal/core/ ./internal/remote/ ./internal/faulty/

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs every benchmark once (all benchmarks live in the
# root package, BenchmarkIncrementalDetect included) so benchmark code
# cannot rot; the output is kept in bin/bench-smoke.txt — a git-ignored
# path, so a local run can never leave tracked-file drift — and CI
# uploads it as an artifact so every run's numbers are retrievable. The
# kernel bench is additionally run at GOMAXPROCS=1 and GOMAXPROCS=4 so
# the intra-unit row-sharding scaling (or, on a single hardware thread,
# its overhead) is visible regardless of the runner's core count.
# bench is its alias, and bench-full runs at the paper's dataset
# sizes.
bench-smoke:
	@mkdir -p bin
	@rm -f bin/bench-smoke.txt
	@$(GO) test -run '^$$' -bench . -benchtime 1x . > bin/bench-smoke.txt 2>&1 || { cat bin/bench-smoke.txt; exit 1; }
	@echo "== BenchmarkKernel @ GOMAXPROCS=1" >> bin/bench-smoke.txt
	@GOMAXPROCS=1 $(GO) test -run '^$$' -bench '^BenchmarkKernel$$' -benchtime 1x . >> bin/bench-smoke.txt 2>&1 || { cat bin/bench-smoke.txt; exit 1; }
	@echo "== BenchmarkKernel @ GOMAXPROCS=4" >> bin/bench-smoke.txt
	@GOMAXPROCS=4 $(GO) test -run '^$$' -bench '^BenchmarkKernel$$' -benchtime 1x . >> bin/bench-smoke.txt 2>&1 || { cat bin/bench-smoke.txt; exit 1; }
	@cat bin/bench-smoke.txt

bench: bench-smoke

# bench-compare runs bench-smoke's suite on HEAD and on the merge-base
# with origin/main and reports per-benchmark deltas (benchstat when
# installed, plain diff otherwise). Timing deltas are advisory — 1x
# runs on shared runners are too noisy to gate on — but allocs/op is
# deterministic, so a >10% allocs/op regression on BenchmarkKernel or
# BenchmarkOutOfCore fails the target, and CI runs it blocking.
bench-compare:
	@sh scripts/bench_compare.sh

bench-full:
	DISTCFD_SCALE=1.0 $(GO) test -run '^$$' -bench . .

# bench-storage-full is the 10⁸-tuple out-of-core run (DISTCFD_SCALE=10
# puts the headline BenchmarkOutOfCore size at 100M tuples round-robined
# across 4 store sites). Opt-in: it writes tens of GB under TMPDIR and
# runs for tens of minutes; point TMPDIR at a disk with room. Results
# land in BENCH_storage.json by hand after a run.
bench-storage-full:
	DISTCFD_SCALE=10 $(GO) test -run '^$$' -bench '^BenchmarkOutOfCore$$/^tuples=100000000$$' -benchtime 1x -timeout 0 .
