GO ?= go

.PHONY: ci build vet test race bench bench-smoke bench-full bench-compare examples

# ci mirrors .github/workflows/ci.yml: a missing package, vet
# regression, race, broken example, or broken benchmark can never land
# silently again.
ci: build vet race examples bench-smoke

# examples builds AND runs every examples/ program, so facade breakage
# (the examples exercise the public API end to end, including the RPC
# deployment mode over loopback) fails CI instead of rotting.
examples:
	@set -e; for d in examples/*/; do \
		echo "== go run ./$$d"; \
		$(GO) run ./$$d >/dev/null; \
	done

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs every benchmark once (all benchmarks live in the
# root package, BenchmarkIncrementalDetect included) so benchmark code
# cannot rot; the output is kept in bench-smoke.txt, which CI uploads
# as an artifact so every run's numbers are retrievable. The kernel
# bench is additionally run at GOMAXPROCS=1 and GOMAXPROCS=4 so the
# intra-unit row-sharding scaling (or, on a single hardware thread,
# its overhead) is visible regardless of the runner's core count.
# bench is its alias, and bench-full runs at the paper's dataset
# sizes.
bench-smoke:
	@rm -f bench-smoke.txt
	@$(GO) test -run '^$$' -bench . -benchtime 1x . > bench-smoke.txt 2>&1 || { cat bench-smoke.txt; exit 1; }
	@echo "== BenchmarkKernel @ GOMAXPROCS=1" >> bench-smoke.txt
	@GOMAXPROCS=1 $(GO) test -run '^$$' -bench '^BenchmarkKernel$$' -benchtime 1x . >> bench-smoke.txt 2>&1 || { cat bench-smoke.txt; exit 1; }
	@echo "== BenchmarkKernel @ GOMAXPROCS=4" >> bench-smoke.txt
	@GOMAXPROCS=4 $(GO) test -run '^$$' -bench '^BenchmarkKernel$$' -benchtime 1x . >> bench-smoke.txt 2>&1 || { cat bench-smoke.txt; exit 1; }
	@cat bench-smoke.txt

bench: bench-smoke

# bench-compare runs bench-smoke's suite on HEAD and on the merge-base
# with origin/main and reports per-benchmark deltas (benchstat when
# installed, plain diff otherwise). Advisory: CI runs it non-blocking.
bench-compare:
	@sh scripts/bench_compare.sh

bench-full:
	DISTCFD_SCALE=1.0 $(GO) test -run '^$$' -bench . .
