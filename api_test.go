package distcfd

import (
	"context"
	"strings"
	"sync"
	"testing"

	"distcfd/internal/workload"
)

func compileTestCluster(t *testing.T) (*Cluster, []*CFD) {
	t.Helper()
	data := workload.EMPData()
	rules, err := ParseRules(strings.NewReader(`
phi1: [CC, zip] -> [street] : (44, _ || _), (31, _ || _)
phi2: [CC, title] -> [salary]
phi3: [CC, AC] -> [city] : (44, 131 || EDI), (01, 908 || MH)
`))
	if err != nil {
		t.Fatal(err)
	}
	part, err := PartitionUniform(data, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(part)
	if err != nil {
		t.Fatal(err)
	}
	return cl, rules
}

func samePatternSets(t *testing.T, label string, got, want []*Relation) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pattern relations, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !got[i].SameTuples(want[i]) {
			t.Errorf("%s: cfd %d patterns differ\ngot %v\nwant %v", label, i, got[i], want[i])
		}
	}
}

// TestCompileDetectMatchesOneShot: the compiled session returns the
// same violations and accounting as the deprecated one-shot DetectSet,
// across repeated and concurrent Detect calls.
func TestCompileDetectMatchesOneShot(t *testing.T) {
	cl, rules := compileTestCluster(t)
	want, err := DetectSet(cl, rules, PatDetectRT, Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	det, err := Compile(cl, rules)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for k := 0; k < 3; k++ {
		res, err := det.Detect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		samePatternSets(t, "sequential", res.PerCFD, want.PerCFD)
		if res.ShippedTuples != want.ShippedTuples {
			t.Errorf("run %d: shipped %d, one-shot %d", k, res.ShippedTuples, want.ShippedTuples)
		}
		if res.ModeledTime != want.ModeledTime {
			t.Errorf("run %d: modeled %v, one-shot %v", k, res.ModeledTime, want.ModeledTime)
		}
		if res.Shipment.TotalTuples != res.ShippedTuples {
			t.Errorf("run %d: shipment report total %d != %d", k, res.Shipment.TotalTuples, res.ShippedTuples)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := det.Detect(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			for i := range res.PerCFD {
				if !res.PerCFD[i].SameTuples(want.PerCFD[i]) {
					t.Errorf("concurrent: cfd %d differs", i)
				}
			}
		}()
	}
	wg.Wait()
}

// TestDetectorDetectOne: single-rule serving matches the one-shot
// single-CFD path, and unknown names fail helpfully.
func TestDetectorDetectOne(t *testing.T) {
	cl, rules := compileTestCluster(t)
	det, err := Compile(cl, rules, WithAlgorithm(PatDetectS))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, rule := range rules {
		want, err := Detect(cl, rule, PatDetectS, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := det.DetectOne(ctx, rule.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !res.PerCFD[0].SameTuples(want.Patterns) {
			t.Errorf("%s: DetectOne differs from one-shot Detect", rule.Name)
		}
		if got := res.Patterns(rule.Name); got == nil || !got.SameTuples(want.Patterns) {
			t.Errorf("%s: Result.Patterns lookup failed", rule.Name)
		}
	}
	if _, err := det.DetectOne(ctx, "no-such-rule"); err == nil ||
		!strings.Contains(err.Error(), "no compiled CFD") {
		t.Errorf("unknown rule: got %v", err)
	}
}

// TestDetectorOptions: every option combination yields the same
// violation sets (they tune strategy and placement, never answers).
func TestDetectorOptions(t *testing.T) {
	cl, rules := compileTestCluster(t)
	want, err := DetectSet(cl, rules, PatDetectRT, Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, opts := range [][]Option{
		{WithAlgorithm(CTRDetect)},
		{WithAlgorithm(PatDetectS), WithWorkers(1)},
		{WithClustering(false), WithWorkers(4)},
		{WithCostModel(DefaultCostModel()), WithMineTheta(0.2)},
	} {
		det, err := Compile(cl, rules, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := det.Detect(ctx)
		if err != nil {
			t.Fatal(err)
		}
		samePatternSets(t, "options", res.PerCFD, want.PerCFD)
	}
}

// TestDetectorContext: a dead context fails fast and leaves the
// detector serviceable.
func TestDetectorContext(t *testing.T) {
	cl, rules := compileTestCluster(t)
	det, err := Compile(cl, rules)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := det.Detect(ctx); err == nil {
		t.Error("cancelled context did not fail Detect")
	}
	if _, err := det.Detect(context.Background()); err != nil {
		t.Errorf("detector unusable after cancelled call: %v", err)
	}
}

// TestDetectCentralHonorsOptions: the fixed DetectCentral routes
// through the compiled session and no longer discards options.
func TestDetectCentralHonorsOptions(t *testing.T) {
	d := workload.EMPData()
	rule, err := ParseCFD(`phi3: [CC, AC] -> [city] : (44, 131 || EDI), (01, 908 || MH)`)
	if err != nil {
		t.Fatal(err)
	}
	pats, err := DetectCentral(d, rule)
	if err != nil {
		t.Fatal(err)
	}
	if pats.Len() != 2 {
		t.Errorf("central patterns = %d, want 2", pats.Len())
	}
	for _, algo := range []Algorithm{CTRDetect, PatDetectS, PatDetectRT} {
		got, err := DetectCentral(d, rule, WithAlgorithm(algo))
		if err != nil {
			t.Fatal(err)
		}
		if !got.SameTuples(pats) {
			t.Errorf("%v: central result differs", algo)
		}
	}
}

// TestDetectorIncrementalServing drives the facade's delta loop:
// Apply routes deltas, DetectIncremental matches Detect byte for byte
// on violations and accounting, and the delta channel undercuts the
// full-recompute shipment once the session is warm.
func TestDetectorIncrementalServing(t *testing.T) {
	cl, rules := compileTestCluster(t)
	det, err := Compile(cl, rules)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Seed round.
	if _, err := det.DetectIncremental(ctx); err != nil {
		t.Fatal(err)
	}
	gen, err := det.Apply(ctx, 0, Delta{
		Inserts: []Tuple{
			{"n1", "Ada", "MTS", "44", "131", "1112223", "Mayfield", "NYC", "EH4 8LE", "80k"},
			{"n2", "Lin", "MTS", "44", "131", "1112224", "Mayfield", "EDI", "EH4 8LE", "80k"},
		},
		Deletes: []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Gen != 1 {
		t.Fatalf("first delta reported generation %d", gen.Gen)
	}
	inc, err := det.DetectIncremental(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !inc.Incremental {
		t.Fatal("incremental result not marked")
	}
	full, err := det.Detect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	samePatternSets(t, "incremental vs detect", inc.PerCFD, full.PerCFD)
	if inc.ShippedTuples != full.ShippedTuples || inc.ModeledTime != full.ModeledTime {
		t.Fatalf("accounting diverged: inc (%d, %v) vs full (%d, %v)",
			inc.ShippedTuples, inc.ModeledTime, full.ShippedTuples, full.ModeledTime)
	}
	if inc.ShippedTuples > 0 && inc.DeltaShippedTuples >= inc.ShippedTuples {
		t.Fatalf("delta channel shipped %d, full equivalent %d — no incremental saving",
			inc.DeltaShippedTuples, inc.ShippedTuples)
	}
	if inc.Shipment.TotalDeltaTuples != inc.DeltaShippedTuples {
		t.Fatalf("shipment report delta total %d != result %d",
			inc.Shipment.TotalDeltaTuples, inc.DeltaShippedTuples)
	}
	// DetectDelta is Apply + DetectIncremental in one call.
	res, err := det.DetectDelta(ctx, map[int]Delta{
		1: {Inserts: []Tuple{{"n3", "Kim", "DMTS", "44", "131", "1112225", "Crichton", "NYC", "EH2 4HF", "95k"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	full2, err := det.Detect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	samePatternSets(t, "detectdelta vs detect", res.PerCFD, full2.PerCFD)
}

// TestDetectorAdmissionDrain pins the facade's overload surface:
// WithAdmissionPolicy installs a controller on every site, Drain
// latches (HealthDetail reports it; FailDegrade answers partially
// without the drained site), and Resume restores byte-identical full
// results.
func TestDetectorAdmissionDrain(t *testing.T) {
	cl, rules := compileTestCluster(t)
	det, err := Compile(cl, rules,
		WithAdmissionPolicy(AdmissionPolicy{}),
		WithFailurePolicy(FailDegrade))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := det.Detect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want.Partial {
		t.Fatal("healthy run reported partial")
	}

	if err := det.Drain(ctx, 1); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	hd := det.HealthDetail()
	if !hd[1].Draining || hd[0].Draining || hd[2].Draining {
		t.Fatalf("drain state after Drain(1): %+v", hd)
	}
	res, err := det.Detect(ctx)
	if err != nil {
		t.Fatalf("degrade run: %v", err)
	}
	if !res.Partial || len(res.ExcludedSites) != 1 || res.ExcludedSites[0] != 1 {
		t.Fatalf("draining site not excluded: partial=%v excluded=%v", res.Partial, res.ExcludedSites)
	}
	if hd = det.HealthDetail(); hd[1].Breaker != BreakerClosed {
		t.Fatalf("breaker %v for a draining site; draining is not death", hd[1].Breaker)
	}

	det.Resume(1)
	if det.HealthDetail()[1].Draining {
		t.Fatal("Resume did not clear the drain state")
	}
	after, err := det.Detect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Partial {
		t.Fatal("post-resume run still partial")
	}
	samePatternSets(t, "post-resume vs pre-drain", after.PerCFD, want.PerCFD)

	if err := det.Drain(ctx, 99); err == nil {
		t.Fatal("Drain must reject an out-of-range site")
	}
	cl2, rules2 := compileTestCluster(t)
	bare, err := Compile(cl2, rules2)
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.Drain(ctx, 0); err == nil || !strings.Contains(err.Error(), "no admission controller") {
		t.Fatalf("a session without WithAdmissionPolicy has no drain surface: %v", err)
	}
}
